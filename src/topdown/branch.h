/**
 * @file
 * Branch direction prediction for the top-down model: a gshare predictor
 * with an optional table of static FDO hints, plus a last-target
 * predictor for indirect branches (virtual dispatch, VM interpreters).
 *
 * The conditional predict-and-update path lives in the header (it runs
 * once per modelled branch), and the indirect-target table is a flat
 * open-addressing map instead of `std::unordered_map` — same outcomes,
 * no per-node allocation or pointer chasing.
 */
#ifndef ALBERTA_TOPDOWN_BRANCH_H
#define ALBERTA_TOPDOWN_BRANCH_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/rng.h"
#include "topdown/flatmap.h"

namespace alberta::topdown {

/** Static per-site branch hints produced by the FDO optimizer. */
struct BranchHints
{
    /**
     * Site key -> hinted direction. A hinted site bypasses dynamic
     * prediction entirely, modelling a compiler that laid out the code
     * so the hinted direction is the fall-through path.
     */
    std::unordered_map<std::uint64_t, bool> direction;
};

/** gshare conditional-branch predictor (12-bit history, 2-bit counters). */
class BranchPredictor
{
  public:
    BranchPredictor();

    /**
     * Predict and update for one conditional branch.
     *
     * @param site stable identifier of the static branch site
     * @param taken the actual outcome
     * @return true if the prediction was correct
     */
    bool
    conditional(std::uint64_t site, bool taken)
    {
        ++conditionals_;

        if (hints_) {
            const auto it = hints_->direction.find(site);
            if (it != hints_->direction.end()) {
                // Static hint: no dynamic state consulted or trained,
                // the compiler fixed the layout. History still records
                // the outcome so unhinted branches see a consistent
                // context.
                history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                           (kTableSize - 1);
                const bool correct = it->second == taken;
                if (!correct)
                    ++mispredicts_;
                return correct;
            }
        }

        const std::uint64_t index =
            (support::mix64(site) ^ history_) & (kTableSize - 1);
        std::uint8_t &counter = counters_[index];
        const bool predicted = counter >= 2;
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & (kTableSize - 1);
        const bool correct = predicted == taken;
        if (!correct)
            ++mispredicts_;
        return correct;
    }

    /**
     * Predict and update for one indirect branch via a last-target
     * table keyed by site.
     *
     * @return true if the predicted target matched @p target
     */
    bool indirect(std::uint64_t site, std::uint64_t target);

    /** Install (or clear, with nullptr) FDO branch hints. */
    void setHints(const BranchHints *hints) { hints_ = hints; }

    /** Currently installed FDO hints (nullptr when none). */
    const BranchHints *hints() const { return hints_; }

    /** Forget all learned state (hints persist). */
    void reset();

    /** Conditional branches observed. */
    std::uint64_t conditionals() const { return conditionals_; }
    /** Conditional mispredictions observed. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /**
     * Fold the full learned state — gshare counters, histories,
     * indirect-target table, statistics — into @p seed. Equal digests
     * mean identical predictions on every future branch sequence
     * (installed hints are configuration, not learned state, and are
     * not folded). The predictor is copyable, so machine snapshots
     * copy it wholesale.
     */
    std::uint64_t digest(std::uint64_t seed) const;

    /** gshare geometry, public so the segment warm-up planner
     * (UopTrace::planWarmStarts) can mirror the counter indexing and
     * track staleness per table entry. */
    static constexpr int kHistoryBits = 12;
    static constexpr std::size_t kTableSize = std::size_t(1)
                                              << kHistoryBits;

  private:
    std::vector<std::uint8_t> counters_;
    /** Indirect-target table indexed by site ^ folded history, so
     * interpreter dispatch loops with repeating opcode patterns are
     * predictable (ITTAGE-like behaviour). */
    FlatKeyMap<std::uint64_t> targets_;
    std::uint64_t history_ = 0;
    std::uint64_t indirectHistory_ = 0;
    std::uint64_t conditionals_ = 0;
    std::uint64_t mispredicts_ = 0;
    const BranchHints *hints_ = nullptr;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_BRANCH_H
