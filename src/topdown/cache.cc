#include "topdown/cache.h"

#include <bit>

#include "topdown/uop.h"

namespace alberta::topdown {

namespace {

int
log2Exact(std::uint64_t value)
{
    support::fatalIf(!std::has_single_bit(value),
                     "cache geometry must be a power of two; got ", value);
    return std::countr_zero(value);
}

} // namespace

Cache::Cache(std::uint64_t bytes, int ways, int line_bytes)
    : ways_(ways), lineShift_(log2Exact(line_bytes))
{
    support::fatalIf(ways <= 0, "cache needs at least one way");
    const std::uint64_t lines = bytes / line_bytes;
    support::fatalIf(lines % ways != 0, "cache bytes not divisible into ",
                     ways, " ways");
    const std::uint64_t sets = lines / ways;
    log2Exact(sets); // validate power of two
    setMask_ = sets - 1;
    tags_.assign(lines, ~0ULL);
    lru_.assign(lines, 0);
    mru_.assign(sets, 0);
}

bool
Cache::accessSlow(std::uint64_t line, std::uint64_t set,
                  std::size_t base)
{
    std::size_t victim = base;
    std::uint64_t oldest = ~0ULL;
    for (int w = 0; w < ways_; ++w) {
        const std::size_t idx = base + w;
        if (tags_[idx] == line) {
            lru_[idx] = stamp_;
            mru_[set] = static_cast<std::uint8_t>(w);
            return true;
        }
        if (lru_[idx] < oldest) {
            oldest = lru_[idx];
            victim = idx;
        }
    }
    ++misses_;
    tags_[victim] = line;
    lru_[victim] = stamp_;
    mru_[set] = static_cast<std::uint8_t>(victim - base);
    return false;
}

std::uint64_t
Cache::digest(std::uint64_t seed) const
{
    seed = digestFold(seed, stamp_);
    seed = digestFold(seed, misses_);
    for (const std::uint64_t tag : tags_)
        seed = digestFold(seed, tag);
    for (const std::uint64_t stamp : lru_)
        seed = digestFold(seed, stamp);
    for (const std::uint8_t way : mru_)
        seed = digestFold(seed, way);
    return seed;
}

void
Cache::reset()
{
    std::fill(tags_.begin(), tags_.end(), ~0ULL);
    std::fill(lru_.begin(), lru_.end(), 0);
    std::fill(mru_.begin(), mru_.end(), 0);
    misses_ = 0;
    stamp_ = 0;
}

MemoryHierarchy::MemoryHierarchy()
    : l1d_(32 * 1024, 8, 64),
      l1i_(32 * 1024, 8, 64),
      l2_(256 * 1024, 8, 64),
      l3_(2 * 1024 * 1024, 16, 64)
{
}

double
MemoryHierarchy::beyondL1(std::uint64_t addr)
{
    if (l2_.access(addr))
        return lat_.l2;
    if (l3_.access(addr))
        return lat_.l3;
    return lat_.memory;
}

double
MemoryHierarchy::beyondL1Sweep(std::uint64_t addr)
{
    if (l2_.accessSweep(addr))
        return lat_.l2;
    if (l3_.accessSweep(addr))
        return lat_.l3;
    return lat_.memory;
}

std::uint64_t
MemoryHierarchy::digest(std::uint64_t seed) const
{
    seed = l1d_.digest(seed);
    seed = l1i_.digest(seed);
    seed = l2_.digest(seed);
    return l3_.digest(seed);
}

void
MemoryHierarchy::reset()
{
    l1d_.reset();
    l1i_.reset();
    l2_.reset();
    l3_.reset();
}

} // namespace alberta::topdown
