#include "topdown/branch.h"

#include "topdown/uop.h"

namespace alberta::topdown {

BranchPredictor::BranchPredictor()
{
    counters_.assign(kTableSize, 2); // weakly taken
}

bool
BranchPredictor::indirect(std::uint64_t site, std::uint64_t target)
{
    // Combine the site with recent target history so repeating
    // dispatch sequences (interpreter loops, event kinds) predict.
    // No pre-mixing: equality of keys (all that matters for outcomes)
    // is unchanged by a bijective hash, and the table mixes for probe
    // distribution itself.
    const std::uint64_t key =
        site ^ indirectHistory_ * 0x9e3779b97f4a7c15ULL;
    bool inserted = false;
    std::uint64_t &entry = targets_.slot(key, &inserted);
    bool correct;
    if (inserted) {
        correct = false;
    } else {
        correct = entry == target;
    }
    entry = target;
    indirectHistory_ =
        ((indirectHistory_ << 4) ^ support::mix64(target)) & 0xffff;
    if (!correct)
        ++mispredicts_;
    return correct;
}

std::uint64_t
BranchPredictor::digest(std::uint64_t seed) const
{
    for (const std::uint8_t counter : counters_)
        seed = digestFold(seed, counter);
    seed = digestFold(seed, history_);
    seed = digestFold(seed, indirectHistory_);
    seed = digestFold(seed, conditionals_);
    seed = digestFold(seed, mispredicts_);
    targets_.forEach([&seed](std::uint64_t key, std::uint64_t target) {
        seed = digestFold(seed, key);
        seed = digestFold(seed, target);
    });
    return seed;
}

void
BranchPredictor::reset()
{
    counters_.assign(kTableSize, 2);
    targets_.clear();
    history_ = 0;
    indirectHistory_ = 0;
    conditionals_ = 0;
    mispredicts_ = 0;
}

} // namespace alberta::topdown
