#include "topdown/branch.h"

#include "topdown/uop.h"

namespace alberta::topdown {

BranchPredictor::BranchPredictor()
{
    counters_.assign(kTableSize, 2); // weakly taken
}

bool
BranchPredictor::indirect(std::uint64_t site, std::uint64_t target)
{
    // Combine the site with recent target history so repeating
    // dispatch sequences (interpreter loops, event kinds) predict.
    // No pre-mixing: equality of keys (all that matters for outcomes)
    // is unchanged by a bijective hash, and the table mixes for probe
    // distribution itself.
    const std::uint64_t key =
        site ^ indirectHistory_ * 0x9e3779b97f4a7c15ULL;
    return indirectPrepared(key, support::mix64(key), target,
                            support::mix64(target));
}

bool
BranchPredictor::indirectPrepared(std::uint64_t key,
                                  std::uint64_t key_hash,
                                  std::uint64_t target,
                                  std::uint64_t target_mix)
{
    bool inserted = false;
    std::uint64_t &entry = targets_.slotHashed(key, key_hash, &inserted);
    // Whether the last target matched is data the host predictor
    // cannot learn; keep the hot path branch-free (flag ops, not
    // jumps). A fresh slot reads as a mispredict, same as before.
    const bool correct = !inserted && entry == target;
    entry = target;
    indirectHistory_ = ((indirectHistory_ << 4) ^ target_mix) & 0xffff;
    mispredicts_ += static_cast<std::uint64_t>(!correct);
    return correct;
}

std::uint64_t
BranchPredictor::digest(std::uint64_t seed) const
{
    for (const std::uint8_t counter : counters_)
        seed = digestFold(seed, counter);
    seed = digestFold(seed, history_);
    seed = digestFold(seed, indirectHistory_);
    seed = digestFold(seed, conditionals_);
    seed = digestFold(seed, mispredicts_);
    targets_.forEach([&seed](std::uint64_t key, std::uint64_t target) {
        seed = digestFold(seed, key);
        seed = digestFold(seed, target);
    });
    return seed;
}

void
BranchPredictor::reset()
{
    counters_.assign(kTableSize, 2);
    targets_.clear();
    history_ = 0;
    indirectHistory_ = 0;
    conditionals_ = 0;
    mispredicts_ = 0;
}

} // namespace alberta::topdown
