#include "topdown/branch.h"

#include "support/rng.h"

namespace alberta::topdown {

BranchPredictor::BranchPredictor()
{
    counters_.assign(kTableSize, 2); // weakly taken
}

bool
BranchPredictor::conditional(std::uint64_t site, bool taken)
{
    ++conditionals_;

    if (hints_) {
        const auto it = hints_->direction.find(site);
        if (it != hints_->direction.end()) {
            // Static hint: no dynamic state consulted or trained, the
            // compiler fixed the layout. History still records the
            // outcome so unhinted branches see a consistent context.
            history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                       (kTableSize - 1);
            const bool correct = it->second == taken;
            if (!correct)
                ++mispredicts_;
            return correct;
        }
    }

    const std::uint64_t index =
        (support::mix64(site) ^ history_) & (kTableSize - 1);
    std::uint8_t &counter = counters_[index];
    const bool predicted = counter >= 2;
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & (kTableSize - 1);
    const bool correct = predicted == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

bool
BranchPredictor::indirect(std::uint64_t site, std::uint64_t target)
{
    // Combine the site with recent target history so repeating
    // dispatch sequences (interpreter loops, event kinds) predict.
    const std::uint64_t key =
        support::mix64(site ^ indirectHistory_ * 0x9e3779b97f4a7c15ULL);
    auto [it, inserted] = targets_.try_emplace(key, target);
    bool correct;
    if (inserted) {
        correct = false;
    } else {
        correct = it->second == target;
        it->second = target;
    }
    indirectHistory_ =
        ((indirectHistory_ << 4) ^ support::mix64(target)) & 0xffff;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    counters_.assign(kTableSize, 2);
    targets_.clear();
    history_ = 0;
    indirectHistory_ = 0;
    conditionals_ = 0;
    mispredicts_ = 0;
}

} // namespace alberta::topdown
