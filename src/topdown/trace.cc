#include "topdown/trace.h"

#include <algorithm>
#include <cstring>

#include "support/check.h"
#include "support/rng.h"
#include "topdown/branch.h"
#include "topdown/flatmap.h"
#include "topdown/machine.h"

namespace alberta::topdown {

void
UopTrace::clear()
{
    size_ = 0;
    streams_.clear();
    methods_.clear();
    methodMarks_.clear();
    totalUops_ = 0;
}

void
UopTrace::reserve(std::size_t records)
{
    if (records > capacity_)
        grow(records);
}

void
UopTrace::grow(std::size_t need)
{
    std::size_t cap = capacity_ ? capacity_ * 2 : 4096;
    if (cap < need)
        cap = need;
    std::unique_ptr<std::uint8_t[]> op(new std::uint8_t[cap]);
    std::unique_ptr<std::uint8_t[]> kind(new std::uint8_t[cap]);
    std::unique_ptr<std::uint32_t[]> a(new std::uint32_t[cap]);
    std::unique_ptr<std::uint64_t[]> b(new std::uint64_t[cap]);
    if (size_ != 0) {
        std::memcpy(op.get(), op_.get(), size_ * sizeof(op_[0]));
        std::memcpy(kind.get(), kind_.get(), size_ * sizeof(kind_[0]));
        std::memcpy(a.get(), a_.get(), size_ * sizeof(a_[0]));
        std::memcpy(b.get(), b_.get(), size_ * sizeof(b_[0]));
    }
    op_ = std::move(op);
    kind_ = std::move(kind);
    a_ = std::move(a);
    b_ = std::move(b);
    capacity_ = cap;
}

void
UopTrace::appendStream(OpKind k, std::uint64_t addr,
                       std::uint64_t count, std::uint32_t stride)
{
    const auto idx = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back({addr, count, stride, k});
    push(TraceOp::Stream, static_cast<std::uint8_t>(k), idx, 0);
    totalUops_ += count;
}

void
UopTrace::appendMethod(std::uint32_t id, std::uint32_t code_bytes,
                       std::uint64_t stable_key)
{
    const auto idx = static_cast<std::uint32_t>(methods_.size());
    methods_.push_back({id, code_bytes, stable_key});
    methodMarks_.push_back(size_);
    push(TraceOp::Method, 0, idx, 0);
}

void
UopTrace::replay(Machine &machine, std::size_t first,
                 std::size_t last) const
{
    support::panicIf(last > records() || first > last,
                     "trace: replay range out of bounds");
    for (std::size_t i = first; i < last; ++i) {
        switch (static_cast<TraceOp>(op_[i])) {
        case TraceOp::Ops:
            machine.ops(static_cast<OpKind>(kind_[i]), b_[i]);
            break;
        case TraceOp::Memory:
            if (static_cast<OpKind>(kind_[i]) == OpKind::Load)
                machine.load(b_[i]);
            else
                machine.store(b_[i]);
            break;
        case TraceOp::Stream: {
            const StreamArgs &s = streams_[a_[i]];
            machine.stream(s.kind, s.addr, s.count, s.stride);
            break;
        }
        case TraceOp::Branch:
            machine.branch(a_[i], kind_[i] != 0);
            break;
        case TraceOp::Indirect:
            machine.indirect(a_[i], b_[i]);
            break;
        case TraceOp::Call:
            machine.call();
            break;
        case TraceOp::Method: {
            const MethodArgs &m = methods_[a_[i]];
            machine.setMethod(m.id, m.codeBytes, m.stableKey);
            break;
        }
        }
    }
}

void
UopTrace::replayBatched(Machine &machine, std::size_t first,
                        std::size_t last) const
{
    machine.replayBatched(*this, first, last);
}

std::vector<std::size_t>
UopTrace::cutPoints(int segments) const
{
    support::fatalIf(segments < 1, "trace: need at least one segment");
    std::vector<std::size_t> cuts;
    cuts.reserve(static_cast<std::size_t>(segments) + 1);
    cuts.push_back(0);
    std::uint64_t cum = 0;
    std::size_t record = 0;
    for (int s = 1; s < segments; ++s) {
        // Target cumulative uops for the end of segment s-1; advance
        // to the first record boundary at or past it.
        const std::uint64_t target =
            totalUops_ / segments * s +
            totalUops_ % segments * s / segments;
        while (record < records() && cum < target)
            cum += uopsOf(record++);
        cuts.push_back(record);
    }
    cuts.push_back(records());
    return cuts;
}

std::size_t
UopTrace::lastMethodAt(std::size_t i) const
{
    // methodMarks_ is ascending; find the last mark <= i.
    const auto it = std::upper_bound(methodMarks_.begin(),
                                     methodMarks_.end(), i);
    if (it == methodMarks_.begin())
        return records();
    return *(it - 1);
}

std::size_t
UopTrace::warmStart(std::size_t cut, std::uint64_t warmup_uops) const
{
    std::size_t start = cut;
    std::uint64_t seen = 0;
    while (start > 0 && seen < warmup_uops)
        seen += uopsOf(--start);
    return start;
}

namespace {

/** Stale-access budget per retired uop of a segment: one potentially
 * mis-decided hit/miss or prediction per this many uops keeps the
 * resulting slot-delta error well under the 1e-3 per-fraction splice
 * bound (a wrong memory-level decision costs at most a few hundred
 * slots against ~1.5 slots accounted per uop). */
constexpr std::uint64_t kUopsPerStaleAccess = 1'000'000;

/** Floor on a segment's stale budget: tiny segments may always wear a
 * handful of stale accesses (their warm-up usually covers the whole
 * prefix anyway). */
constexpr std::uint64_t kMinStaleBudget = 2;

/** Lines plausibly still resident in the modelled hierarchy at a
 * segment cut: twice the L3 line capacity (2 MiB / 64 B = 32768
 * lines; see MemoryHierarchy). A line whose most recent touch is not
 * among this many distinct recently-touched lines has long been
 * evicted in the true run too, so a replay missing it loses nothing. */
constexpr std::size_t kResidentLines = 2 * 32768;

/** Budget of plausibly-resident lines a segment replay may miss.
 * Missing lines change *eviction pressure* — the true machine's
 * caches hold them and evict the segment's live lines sooner — a
 * weaker per-line effect than a directly mis-decided access, so the
 * budget is looser than the stale-access one. */
constexpr std::uint64_t kUopsPerMissingLine = 50'000;
constexpr std::uint64_t kMinMissingLines = 2048;

/** Domain salts keeping cache-line and indirect-predictor keys from
 * colliding in the planner's last-touch table. */
constexpr std::uint64_t kLineSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kIndirectSalt = 0x165667b19e3779f9ULL;

/** The machine's global site key (Machine::siteKey, mirrored). */
std::uint64_t
globalSiteKey(std::uint64_t stable_key, std::uint32_t site)
{
    return stable_key * 0x9e3779b97f4a7c15ULL + site;
}

} // namespace

std::vector<std::size_t>
UopTrace::planWarmStarts(std::span<const std::size_t> cuts,
                         std::uint64_t warmup_uops) const
{
    support::panicIf(cuts.size() < 2 || cuts.front() != 0 ||
                         cuts.back() != records(),
                     "trace: malformed cut list");
    const std::size_t segments = cuts.size() - 1;
    std::vector<std::size_t> warm(segments, 0);
    if (segments == 1)
        return warm;

    // Last record (plus one; 0 = never) that touched each piece of
    // long-lived state. Cache lines and indirect-target slots live in
    // hash maps; gshare counters get a dense table because the planner
    // mirrors the predictor's exact indexing.
    FlatKeyMap<std::size_t> lineTouch;
    FlatKeyMap<std::size_t> indirectTouch;
    std::vector<std::size_t> gshareLast(BranchPredictor::kTableSize, 0);
    // Per-segment record indices of accesses whose previous touch
    // precedes the segment (sorted later; the budget-th smallest
    // becomes the warm-start constraint).
    std::vector<std::vector<std::size_t>> stale(segments);
    // Per-segment last-touch records of distinct lines touched before
    // the segment's cut: the true machine's caches hold (a recency
    // subset of) these lines, and a replay whose warm-up misses too
    // many of them under-pressures its sets — live lines survive
    // evictions they would not survive in the true run, even though
    // every line the segment *itself* touches is warm.
    std::vector<std::vector<std::size_t>> residentBefore(segments);
    std::vector<std::uint64_t> segmentUops(segments, 0);

    std::uint64_t stableKey = 0;
    std::size_t seg = 0;
    const auto note = [&](std::size_t &last, std::size_t record) {
        const std::size_t prev = last;
        last = record + 1;
        if (seg == 0 || prev == 0)
            return; // exact segment / true cold start
        if (prev - 1 < cuts[seg])
            stale[seg].push_back(prev - 1);
    };
    // Cache-line touch at an explicit segment: staleness for the
    // access itself, plus the occupancy record — `prev` is the line's
    // final touch before every cut boundary the gap (prev, record]
    // spans.
    const auto touchAt = [&](std::uint64_t key, std::size_t record,
                             std::size_t at_seg) {
        std::size_t &last = lineTouch.slot(key);
        const std::size_t prev = last;
        last = record + 1;
        if (prev != 0) {
            for (std::size_t b = at_seg; b >= 1 && cuts[b] > prev - 1;
                 --b)
                residentBefore[b].push_back(prev - 1);
        }
        if (at_seg == 0 || prev == 0)
            return;
        if (prev - 1 < cuts[at_seg])
            stale[at_seg].push_back(prev - 1);
    };
    // Deferred code-fetch touch. The fetch cursor advances four bytes
    // per uop, so consecutive records overwhelmingly re-fetch the same
    // 64-byte line; within one segment those repeats only move the
    // line's `last` forward (prev stays inside the segment, so the
    // stale and occupancy branches cannot fire). Batching a run of
    // same-line same-segment fetches into one touchAt — issued with
    // the run's final record once the line, the segment, or a
    // same-key data access breaks the run — performs the identical
    // map updates and pushes at a fraction of the probes.
    bool codePending = false;
    std::uint64_t codeKey = 0;
    std::size_t codeSeg = 0;
    std::size_t codeRecord = 0;
    const auto flushCode = [&] {
        if (!codePending)
            return;
        codePending = false;
        touchAt(codeKey, codeRecord, codeSeg);
    };
    const auto touchCode = [&](std::uint64_t key, std::size_t record) {
        if (codePending) {
            if (key == codeKey && seg == codeSeg) {
                codeRecord = record;
                return;
            }
            flushCode();
        }
        codePending = true;
        codeKey = key;
        codeSeg = seg;
        codeRecord = record;
    };
    const auto touch = [&](std::uint64_t key, std::size_t record) {
        // A data access to the pending code line must observe its
        // batched fetches first, or `prev` chains out of order.
        if (codePending && key == codeKey)
            flushCode();
        touchAt(key, record, seg);
    };

    // Predictor history registers, emulated exactly (the trace records
    // every taken bit and indirect target, and a full-trace replay is
    // the true run): staleness is tracked per *counter*, at the same
    // site-XOR-history granularity the machine reads, not per site.
    // Per-site tracking misses the case where a site recurs quickly
    // but under a history context last seen far in the past — the
    // dominant residual error for dictionary-compression workloads.
    std::uint64_t history = 0;
    std::uint64_t indirectHistory = 0;
    constexpr std::uint64_t kIndexMask = BranchPredictor::kTableSize - 1;

    // Code fetch, mirrored: every retiring record advances the cursor
    // by four bytes per uop, cyclically through the current method's
    // code footprint, fetching one instruction line per 64 bytes (see
    // Machine::advanceCodeSlow). The footprint here is the raw
    // pre-layout-scaling byte count — an installed code layout rescales
    // footprints but leaves the access *pattern* per method intact, so
    // staleness tracking stays sound. Call-heavy workloads that
    // interleave many methods re-fetch a method's lines on the next
    // activation, which may be a segment away.
    std::uint64_t codeBase = 0;
    std::uint64_t codeBytes = 4096; // fresh-machine default footprint
    std::uint64_t codeCursor = 0;
    const auto fetchSpan = [&](std::uint64_t from, std::uint64_t to,
                               std::size_t record) {
        // Byte range [from, to) of the current footprint, no wrap.
        for (std::uint64_t line = from >> 6; line <= (to - 1) >> 6;
             ++line)
            touchCode(((codeBase >> 6) + line) * 2 + kLineSalt,
                      record);
    };
    const auto fetch = [&](std::uint64_t uops, std::size_t record) {
        const std::uint64_t bytes = uops * 4;
        if (bytes == 0)
            return;
        if (bytes >= codeBytes) {
            // Full wrap: every line of the footprint is fetched.
            fetchSpan(0, codeBytes, record);
            codeCursor = (codeCursor + bytes) % codeBytes;
            return;
        }
        const std::uint64_t end = codeCursor + bytes;
        if (end <= codeBytes) {
            fetchSpan(codeCursor, end, record);
            codeCursor = end == codeBytes ? 0 : end;
        } else {
            fetchSpan(codeCursor, codeBytes, record);
            fetchSpan(0, end - codeBytes, record);
            codeCursor = end - codeBytes;
        }
    };

    const std::size_t total = records();
    for (std::size_t i = 0; i < total; ++i) {
        while (i >= cuts[seg + 1])
            ++seg;
        const std::uint64_t uops = uopsOf(i);
        segmentUops[seg] += uops;
        fetch(uops, i);
        switch (static_cast<TraceOp>(op_[i])) {
        case TraceOp::Ops:
            break;
        case TraceOp::Memory:
            touch((b_[i] >> 6) * 2 + kLineSalt, i);
            break;
        case TraceOp::Stream: {
            const StreamArgs &s = streams_[a_[i]];
            const std::uint64_t stride = s.stride ? s.stride : 1;
            const std::uint64_t firstLine = s.addr >> 6;
            const std::uint64_t lastLine =
                (s.addr + (s.count ? s.count - 1 : 0) * stride) >> 6;
            for (std::uint64_t line = firstLine; line <= lastLine;
                 ++line)
                touch(line * 2 + kLineSalt, i);
            break;
        }
        case TraceOp::Branch: {
            // BranchPredictor::conditional, mirrored.
            const std::uint64_t site = globalSiteKey(stableKey, a_[i]);
            const std::uint64_t index =
                (support::mix64(site) ^ history) & kIndexMask;
            note(gshareLast[index], i);
            history = ((history << 1) | (kind_[i] ? 1 : 0)) & kIndexMask;
            break;
        }
        case TraceOp::Indirect: {
            // BranchPredictor::indirect, mirrored.
            const std::uint64_t site = globalSiteKey(stableKey, a_[i]);
            const std::uint64_t key =
                site ^ indirectHistory * 0x9e3779b97f4a7c15ULL;
            note(indirectTouch.slot(key * 2 + kIndirectSalt), i);
            indirectHistory =
                ((indirectHistory << 4) ^ support::mix64(b_[i])) &
                0xffff;
            break;
        }
        case TraceOp::Call:
            break;
        case TraceOp::Method: {
            const MethodArgs &m = methods_[a_[i]];
            stableKey = m.stableKey == ~0ULL ? m.id : m.stableKey;
            // Machine::setMethod, mirrored (disjoint 16 MiB regions).
            codeBase = (static_cast<std::uint64_t>(m.id) + 1) << 24;
            codeBytes = std::max<std::uint64_t>(64, m.codeBytes);
            codeCursor = 0;
            break;
        }
        }
    }

    flushCode();
    // Flush final touches: a line touched for the last time at record
    // t is (potentially) resident at every later cut without the scan
    // loop ever seeing another gap that spans it.
    lineTouch.forEach([&](std::uint64_t, std::size_t last) {
        const std::size_t finalTouch = last - 1;
        for (std::size_t b = segments - 1;
             b >= 1 && cuts[b] > finalTouch; --b)
            residentBefore[b].push_back(finalTouch);
    });

    for (std::size_t s = 1; s < segments; ++s) {
        // Deepen the warm start until at most `budget` of the
        // segment's state references reach back past it.
        const std::uint64_t budget =
            std::max<std::uint64_t>(kMinStaleBudget,
                                    segmentUops[s] / kUopsPerStaleAccess);
        std::size_t planned = warmStart(cuts[s], warmup_uops);
        if (stale[s].size() > budget) {
            std::vector<std::size_t> &p = stale[s];
            // The budget-th smallest previous-touch index: warming
            // from there leaves exactly `budget` references stale.
            std::nth_element(p.begin(),
                             p.begin() +
                                 static_cast<std::ptrdiff_t>(budget),
                             p.end());
            planned = std::min(planned, p[budget]);
        }
        // Occupancy constraint: of the lines plausibly still resident
        // at the cut (recency-capped at kResidentLines), the warm-up
        // must rebuild all but a budget's worth, or the replay's
        // under-pressured sets skip evictions the true run made.
        std::vector<std::size_t> &r = residentBefore[s];
        if (r.size() > kResidentLines) {
            std::nth_element(r.begin(), r.end() - kResidentLines,
                             r.end());
            r.erase(r.begin(),
                    r.end() - static_cast<std::ptrdiff_t>(kResidentLines));
        }
        const std::uint64_t lineBudget =
            std::max<std::uint64_t>(kMinMissingLines,
                                    segmentUops[s] / kUopsPerMissingLine);
        if (r.size() > lineBudget) {
            std::nth_element(r.begin(),
                             r.begin() +
                                 static_cast<std::ptrdiff_t>(lineBudget),
                             r.end());
            planned = std::min(planned, r[lineBudget]);
        }
        // Snap-to-exact: once the constraints push the warm start into
        // the first few percent of the prefix, the replay saved is
        // negligible — start from record 0 and spend the remaining
        // budgets on nothing (init-heavy workloads park their warm
        // start just past a block of init-only state, where whatever
        // does reach further back is exactly what matters most).
        if (planned < cuts[s] / 20)
            planned = 0;
        warm[s] = planned;
    }
    return warm;
}

} // namespace alberta::topdown
