/**
 * @file
 * Set-associative LRU caches and a three-level memory hierarchy used by
 * the top-down model to derive front-end (instruction) and back-end
 * (data) stall slots.
 *
 * The access path is tuned for the model's dominant pattern — repeated
 * hits on a recently-used line — without changing any hit/miss or
 * eviction decision relative to a plain associative scan:
 *  - each set remembers its most-recently-used way, so a repeat hit
 *    costs one tag compare instead of a scan over all ways;
 *  - tags live in their own flat array (contiguous per set, one cache
 *    line for 8 ways), and the LRU stamps are only read on a miss.
 */
#ifndef ALBERTA_TOPDOWN_CACHE_H
#define ALBERTA_TOPDOWN_CACHE_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.h"

namespace alberta::topdown {

/** A single set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    /**
     * @param bytes total capacity in bytes (power of two)
     * @param ways associativity
     * @param line_bytes cache line size in bytes (power of two)
     */
    Cache(std::uint64_t bytes, int ways, int line_bytes);

    /** Access @p addr; returns true on hit and updates LRU state. */
    bool
    access(std::uint64_t addr)
    {
        ++stamp_;
        const std::uint64_t line = addr >> lineShift_;
        const std::uint64_t set = line & setMask_;
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        // MRU-first fast path: a repeat hit on the set's most recent
        // way only refreshes that way's stamp, which cannot change the
        // relative LRU order, so the full scan is equivalent but slower.
        const std::size_t mru = base + mru_[set];
        if (tags_[mru] == line) {
            lru_[mru] = stamp_;
            return true;
        }
        return accessSlow(line, set, base);
    }

    /**
     * Batched-replay access: identical hit/miss decisions and state
     * updates to @ref access, with the non-MRU way scan written as a
     * fixed-trip branchless sweep over the set's tag row (and the
     * victim chosen by a branchless first-minimum reduce) so the
     * compiler can unroll and vectorize it. Way counts without a
     * specialization fall back to the scalar scan.
     */
    bool
    accessSweep(std::uint64_t addr)
    {
        ++stamp_;
        const std::uint64_t line = addr >> lineShift_;
        const std::uint64_t set = line & setMask_;
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        const std::size_t mru = base + mru_[set];
        if (tags_[mru] == line) {
            lru_[mru] = stamp_;
            return true;
        }
        switch (ways_) {
        case 8:
            return sweepWays<8>(line, set, base);
        case 16:
            return sweepWays<16>(line, set, base);
        default:
            return accessSlow(line, set, base);
        }
    }

    /**
     * Flat tag-array index of @p addr's line if resident, -1 when
     * absent. Pure lookup: no stamp, counter, or LRU movement. Used by
     * the batched kernel to validate a code-fetch cycle before
     * fast-forwarding it.
     */
    std::ptrdiff_t
    findResident(std::uint64_t addr) const
    {
        const std::uint64_t line = addr >> lineShift_;
        const std::uint64_t set = line & setMask_;
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (int w = 0; w < ways_; ++w) {
            if (tags_[base + w] == line)
                return static_cast<std::ptrdiff_t>(base + w);
        }
        return -1;
    }

    /**
     * Apply @p cycles repetitions of the access sequence @p idxs (flat
     * tag-array indices from @ref findResident, every line resident,
     * so every access is a hit). Hits never evict, so the final
     * stamps, LRU order, MRU memos, and counters are bit-identical to
     * performing the `cycles * idxs.size()` accesses one at a time —
     * in closed form: ascending-j assignment leaves each index (and
     * each set's MRU memo) with the stamp of its last occurrence in
     * the final cycle, so repeated indices are handled too. Used by
     * the batched kernel to fast-forward steady-state code-fetch
     * cycles.
     */
    void
    fastForwardHits(std::span<const std::uint32_t> idxs,
                    std::uint64_t cycles)
    {
        const std::uint64_t len = idxs.size();
        if (len == 0 || cycles == 0)
            return;
        const std::uint64_t lastCycle = stamp_ + (cycles - 1) * len;
        for (std::uint64_t j = 0; j < len; ++j) {
            const std::size_t idx = idxs[j];
            lru_[idx] = lastCycle + j + 1;
            mru_[idx / ways_] = static_cast<std::uint8_t>(idx % ways_);
        }
        stamp_ += cycles * len;
    }

    /** Forget all cached lines (used between workload runs). */
    void reset();

    /** Accesses observed since construction or reset (the LRU stamp
     * advances exactly once per access, so it doubles as the count). */
    std::uint64_t accesses() const { return stamp_; }
    /** Misses observed since construction or reset. */
    std::uint64_t misses() const { return misses_; }

    /**
     * Fold the complete replacement state — tags, LRU stamps, MRU
     * memos, counters — into @p seed. Two caches with equal digests
     * behave identically on every future access sequence; used by
     * `Machine::stateDigest` to verify snapshot/restore and reset
     * completeness. The cache itself is copyable, so a snapshot of a
     * machine simply copies it.
     */
    std::uint64_t digest(std::uint64_t seed) const;

  private:
    /** Full associative scan; called when the MRU way does not match. */
    bool accessSlow(std::uint64_t line, std::uint64_t set,
                    std::size_t base);

    /** Fixed-trip variant of @ref accessSlow: identical decisions
     * (tags within a set are unique, so "any match" equals "first
     * match"; the victim reduce keeps the lowest-indexed minimum,
     * matching the scalar scan's strict-< update). */
    template <int W>
    bool
    sweepWays(std::uint64_t line, std::uint64_t set, std::size_t base)
    {
        const std::uint64_t *tagRow = &tags_[base];
        int hit = -1;
        for (int w = 0; w < W; ++w) {
            if (tagRow[w] == line)
                hit = w;
        }
        if (hit >= 0) {
            lru_[base + hit] = stamp_;
            mru_[set] = static_cast<std::uint8_t>(hit);
            return true;
        }
        const std::uint64_t *lruRow = &lru_[base];
        int victim = 0;
        std::uint64_t oldest = lruRow[0];
        for (int w = 1; w < W; ++w) {
            const bool older = lruRow[w] < oldest;
            oldest = older ? lruRow[w] : oldest;
            victim = older ? w : victim;
        }
        ++misses_;
        tags_[base + victim] = line;
        lru_[base + victim] = stamp_;
        mru_[set] = static_cast<std::uint8_t>(victim);
        return false;
    }

    int ways_;
    int lineShift_;
    std::uint64_t setMask_;
    std::uint64_t misses_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> mru_; //!< most-recently-used way per set
};

/** Latencies (cycles) of the modelled hierarchy levels. */
struct HierarchyLatency
{
    double l2 = 12.0;
    double l3 = 40.0;
    double memory = 200.0;
};

/**
 * L1 + shared L2/L3 lookup returning the extra latency beyond an L1 hit.
 *
 * Instruction and data sides own private L1s and share the L2/L3 of the
 * enclosing @ref MemoryHierarchy.
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy();

    /** Data access; returns extra cycles beyond the L1D hit latency. */
    double
    data(std::uint64_t addr)
    {
        if (l1d_.access(addr))
            return 0.0;
        return beyondL1(addr);
    }

    /** Instruction fetch; returns extra cycles beyond the L1I hit. */
    double
    fetch(std::uint64_t addr)
    {
        if (l1i_.access(addr))
            return 0.0;
        return beyondL1(addr);
    }

    /**
     * Data accesses for every 64-byte line in [@p first_line,
     * @p last_line]; returns the summed extra latency so a contiguous
     * stream charges its misses in one batch.
     */
    double
    dataRange(std::uint64_t first_line, std::uint64_t last_line)
    {
        double extra = 0.0;
        for (std::uint64_t line = first_line; line <= last_line; ++line)
            extra += data(line << 6);
        return extra;
    }

    /// @name Batched-replay entry points
    /// Same results and state evolution as data()/fetch()/dataRange(),
    /// with every level probed through Cache::accessSweep; the batched
    /// kernel routes all its probes here.
    /// @{
    double
    dataSweep(std::uint64_t addr)
    {
        if (l1d_.accessSweep(addr))
            return 0.0;
        return beyondL1Sweep(addr);
    }

    double
    fetchSweep(std::uint64_t addr)
    {
        if (l1i_.accessSweep(addr))
            return 0.0;
        return beyondL1Sweep(addr);
    }

    double
    dataRangeSweep(std::uint64_t first_line, std::uint64_t last_line)
    {
        double extra = 0.0;
        for (std::uint64_t line = first_line; line <= last_line; ++line)
            extra += dataSweep(line << 6);
        return extra;
    }

    /** L1I residency probe for the code-fetch fast-forward (see
     * Cache::findResident). */
    std::ptrdiff_t
    fetchResident(std::uint64_t addr) const
    {
        return l1i_.findResident(addr);
    }

    /** Fast-forward @p cycles repetitions of an all-hit L1I fetch
     * sequence (see Cache::fastForwardHits). */
    void
    fetchFastForward(std::span<const std::uint32_t> idxs,
                     std::uint64_t cycles)
    {
        l1i_.fastForwardHits(idxs, cycles);
    }
    /// @}

    /** Forget all cached state. */
    void reset();

    /** Fold the full state of all four caches into @p seed. */
    std::uint64_t digest(std::uint64_t seed) const;

    /** L1 data-cache statistics (for tests and reports). */
    const Cache &l1d() const { return l1d_; }
    /** L1 instruction-cache statistics. */
    const Cache &l1i() const { return l1i_; }
    /** Shared L2 statistics. */
    const Cache &l2() const { return l2_; }
    /** Shared L3 statistics. */
    const Cache &l3() const { return l3_; }

  private:
    double beyondL1(std::uint64_t addr);
    double beyondL1Sweep(std::uint64_t addr);

    HierarchyLatency lat_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    Cache l3_;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_CACHE_H
