/**
 * @file
 * Set-associative LRU caches and a three-level memory hierarchy used by
 * the top-down model to derive front-end (instruction) and back-end
 * (data) stall slots.
 */
#ifndef ALBERTA_TOPDOWN_CACHE_H
#define ALBERTA_TOPDOWN_CACHE_H

#include <cstdint>
#include <vector>

#include "support/check.h"

namespace alberta::topdown {

/** A single set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    /**
     * @param bytes total capacity in bytes (power of two)
     * @param ways associativity
     * @param line_bytes cache line size in bytes (power of two)
     */
    Cache(std::uint64_t bytes, int ways, int line_bytes);

    /** Access @p addr; returns true on hit and updates LRU state. */
    bool access(std::uint64_t addr);

    /** Forget all cached lines (used between workload runs). */
    void reset();

    /** Accesses observed since construction or reset. */
    std::uint64_t accesses() const { return accesses_; }
    /** Misses observed since construction or reset. */
    std::uint64_t misses() const { return misses_; }

  private:
    int ways_;
    int lineShift_;
    std::uint64_t setMask_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lru_;
};

/** Latencies (cycles) of the modelled hierarchy levels. */
struct HierarchyLatency
{
    double l2 = 12.0;
    double l3 = 40.0;
    double memory = 200.0;
};

/**
 * L1 + shared L2/L3 lookup returning the extra latency beyond an L1 hit.
 *
 * Instruction and data sides own private L1s and share the L2/L3 of the
 * enclosing @ref MemoryHierarchy.
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy();

    /** Data access; returns extra cycles beyond the L1D hit latency. */
    double data(std::uint64_t addr);

    /** Instruction fetch; returns extra cycles beyond the L1I hit. */
    double fetch(std::uint64_t addr);

    /** Forget all cached state. */
    void reset();

    /** L1 data-cache statistics (for tests and reports). */
    const Cache &l1d() const { return l1d_; }
    /** L1 instruction-cache statistics. */
    const Cache &l1i() const { return l1i_; }
    /** Shared L2 statistics. */
    const Cache &l2() const { return l2_; }
    /** Shared L3 statistics. */
    const Cache &l3() const { return l3_; }

  private:
    double beyondL1(std::uint64_t addr);

    HierarchyLatency lat_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    Cache l3_;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_CACHE_H
