/**
 * @file
 * Block-batched trace replay kernel (Machine::replayBatched).
 *
 * The scalar replay loop dispatches one Machine API call per trace
 * record, and every call pays the same overheads: a hash of the branch
 * site key, loads and stores through `current_`/`total_`, and the
 * code-fetch cursor bookkeeping. This kernel consumes the trace in
 * fixed blocks of 256 records and restructures that work around the
 * SoA lanes without changing a single arithmetic operation:
 *
 *  - Precompute sweeps: per block, a decode pass hashes every
 *    branch-family key — `mix64` of site keys, indirect table keys,
 *    and indirect targets — before any record executes. This is safe
 *    because the hashed inputs are trace-determined: the
 *    stable-method-key shadow advances at Method records, and the
 *    indirect key chain depends only on the recorded targets, so both
 *    can be replayed ahead of execution. (gshare's *probe index* also
 *    XORs the live branch history, so only the site hash is
 *    precomputed; the XOR happens at execute time.)
 *
 *  - Uniform-block specialization: blocks that are Branch records end
 *    to end (tight conditional loops produce them constantly) hash
 *    their site keys in one dense sweep — vectorized 8-wide via
 *    AVX-512DQ `vpmullq` when the host has it, runtime-dispatched —
 *    and execute through a dense gshare loop that keeps the history
 *    register and table pointer local, folds the integer predictor
 *    statistics and the (integer-valued, hence order-free) retiring
 *    lane once per block, and computes mispredict charges with
 *    {0.0, 1.0} mask multiplies instead of data-dependent branches —
 *    the modelled outcome stream is exactly what the host's own
 *    branch predictor cannot learn, so the scalar path's charge
 *    branches pay a host mispredict per hard modelled branch.
 *
 *  - Register mirrors: the per-method and total SlotCounts accumulators,
 *    the retired-uop counter, and the code-fetch cursor state are
 *    copied into locals for the duration of the replay range and
 *    flushed back at method switches and at the end. A sequence of
 *    `+=` on a register copy is bit-identical to the same sequence
 *    through memory — the operations and their order are unchanged.
 *
 *  - Tag-compare sweeps: all cache probes route through
 *    `Cache::accessSweep`, the fixed-trip branchless form of the
 *    associative scan (identical hit/miss/eviction decisions).
 *
 *  - Wrap fast-forward: a bulk code advance that cycles the method's
 *    footprint many times walks one full cycle scalar-wise, verifies
 *    the steady-state fetch sequence is entirely L1I-resident, and
 *    applies the remaining full cycles in closed form
 *    (`Cache::fastForwardHits`) — all-hit cycles charge nothing and
 *    evict nothing, so the final state is the same bit for bit.
 *
 * Records still *execute* strictly in order: slot accounting is
 * floating-point and FP addition is not associative, so any
 * re-association (per-kind partial sums folded per block) would break
 * the model signature. The partitioning above is only used for the
 * integer hash precompute, where order does not exist.
 *
 * Exactness is pinned by the randomized differential suite
 * (tests/test_batched.cc), the 195-workload checksum suite, and the
 * frozen bench signature.
 */
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <span>

#include "support/check.h"
#include "support/rng.h"
#include "topdown/machine.h"
#include "topdown/trace.h"

namespace alberta::topdown {

namespace {

/** Records consumed per batch: large enough to amortize the decode
 * sweeps, small enough that the per-block scratch (a few KiB) stays
 * resident in L1. */
constexpr std::size_t kBlockRecords = 256;

/** Golden-ratio multiplier shared with Machine::siteKey and the
 * indirect-target key derivation in BranchPredictor::indirect. */
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/** Footprint ceiling for the wrap fast-forward: the modelled L1I holds
 * 32 KiB, and a footprint of consecutive lines up to that size maps at
 * most `ways` lines per set, so a full scalar probe cycle leaves every
 * footprint line resident (verified per line regardless). */
constexpr std::uint64_t kBulkFootprintMax = 32768;

/** True when `ALBERTA_NO_BATCH` is set to a non-empty, non-"0" value
 * (checked per replay call, so tests can flip it at runtime). */
bool
batchDisabled()
{
    const char *env = std::getenv("ALBERTA_NO_BATCH");
    if (env == nullptr || *env == '\0')
        return false;
    return !(env[0] == '0' && env[1] == '\0');
}

/** True when ops[0..n) are all Branch records. Branch-free reduction
 * so the compiler turns it into wide compares. */
bool
allBranch(const std::uint8_t *ops, std::size_t n)
{
    constexpr auto kBranch = static_cast<std::uint8_t>(TraceOp::Branch);
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc |= static_cast<std::uint8_t>(ops[i] ^ kBranch);
    return acc == 0;
}

/** Count Branch and Indirect records in ops[0..n). Branch-free sums so
 * the compiler turns the pass into wide compares. */
void
countBranchFamily(const std::uint8_t *ops, std::size_t n,
                  std::size_t &branches, std::size_t &indirects)
{
    constexpr auto kBranch = static_cast<std::uint8_t>(TraceOp::Branch);
    constexpr auto kIndirect =
        static_cast<std::uint8_t>(TraceOp::Indirect);
    std::size_t nb = 0, ni = 0;
    for (std::size_t i = 0; i < n; ++i) {
        nb += ops[i] == kBranch;
        ni += ops[i] == kIndirect;
    }
    branches = nb;
    indirects = ni;
}

/**
 * Dense hash sweep for uniform branch blocks:
 * `out[i] = mix64(site_base + a[i])`.
 *
 * The generic decode hashes keys one record at a time inside its
 * switch; for an all-branch block the site key is a loop-invariant
 * base plus the 32-bit site lane, so the whole sweep is a
 * straight-line map with no lane interaction. mix64's two 64-bit lane
 * multiplies need `vpmullq`, which only AVX-512DQ provides (SSE/AVX2
 * have no packed 64x64 multiply), so the vector form is compiled for
 * that target and selected at runtime. Both functions share one body:
 * identical arithmetic, identical results, only the instruction
 * encoding differs.
 */
void
hashSweepPortable(const std::uint32_t *a, std::uint64_t site_base,
                  std::uint64_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = support::mix64(site_base + a[i]);
}

/**
 * Dense hash sweep over a 64-bit lane: `out[i] = mix64(in[i])`.
 *
 * Used by the mixed-block decode to hash whole lanes ahead of the
 * chain walk: indirect targets feed the history chain, and the
 * finished branch-family keys feed the table probes. Like
 * @ref hashSweepPortable, the AVX-512 twin below shares this body.
 */
void
mixSweepPortable(const std::uint64_t *in, std::uint64_t *out,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = support::mix64(in[i]);
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("avx512f,avx512dq,avx512vl,avx512bw"))) void
hashSweepAvx512(const std::uint32_t *a, std::uint64_t site_base,
                std::uint64_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = support::mix64(site_base + a[i]);
}

__attribute__((target("avx512f,avx512dq,avx512vl,avx512bw"))) void
mixSweepAvx512(const std::uint64_t *in, std::uint64_t *out,
               std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = support::mix64(in[i]);
}
#endif

using HashSweepFn = void (*)(const std::uint32_t *, std::uint64_t,
                             std::uint64_t *, std::size_t);
using MixSweepFn = void (*)(const std::uint64_t *, std::uint64_t *,
                            std::size_t);

bool
hostHasAvx512()
{
#if defined(__x86_64__) && defined(__GNUC__)
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
}

/** Resolved once per process; the host ISA does not change underfoot. */
#if defined(__x86_64__) && defined(__GNUC__)
const HashSweepFn kHashSweep =
    hostHasAvx512() ? hashSweepAvx512 : hashSweepPortable;
const MixSweepFn kMixSweep =
    hostHasAvx512() ? mixSweepAvx512 : mixSweepPortable;
#else
const HashSweepFn kHashSweep = hashSweepPortable;
const MixSweepFn kMixSweep = mixSweepPortable;
#endif

} // namespace

BatchCounters &
batchCounters()
{
    static BatchCounters counters;
    return counters;
}

/** The per-range replay state machine; see the file comment. Lives for
 * one replayBatched call and is a friend of Machine. */
class BatchedKernel
{
  public:
    BatchedKernel(Machine &machine, const UopTrace &trace)
        : m_(machine), t_(trace),
          issueWidth_(static_cast<double>(machine.config_.issueWidth)),
          decodeFrontend_(machine.config_.decodeFrontend),
          takenFrontend_(machine.config_.takenBranchFrontend),
          callFrontend_(machine.config_.callFrontend),
          memStallFactor_(machine.config_.memStallFactor),
          fetchStallFactor_(machine.config_.fetchStallFactor),
          // Scalar code recomputes these products per mispredict; the
          // factors are constants, so the product is the same double.
          mispredictBadspec_(machine.config_.mispredictWrongPath *
                             machine.config_.issueWidth),
          mispredictFrontend_(machine.config_.mispredictRedirect *
                              machine.config_.issueWidth),
          branchBackend_(
              machine.config_
                  .backendCost[static_cast<int>(OpKind::Branch)]),
          hinted_(machine.predictor_.hints() != nullptr)
    {
    }

    void
    run(std::size_t first, std::size_t last)
    {
        loadMethod();
        loadTotals();
        retired_ = m_.retired_;
        for (std::size_t base = first; base < last;
             base += kBlockRecords) {
            const std::size_t count =
                std::min(kBlockRecords, last - base);
            decode(base, count);
            execute(base, count);
        }
        flushMethod();
        flushTotals();
        m_.retired_ = retired_;
    }

  private:
    /// @name Accumulator mirrors
    /// @{
    void
    loadMethod()
    {
        curFrontend_ = m_.current_->frontend;
        curBackend_ = m_.current_->backend;
        curBadspec_ = m_.current_->badspec;
        curRetiring_ = m_.current_->retiring;
        codeBase_ = m_.codeBase_;
        codeBytes_ = m_.codeBytes_;
        cursor_ = m_.codeCursor_;
        fastBytes_ = m_.fastCodeBytes_;
        lastLine_ = m_.lastFetchLine_;
    }

    void
    flushMethod()
    {
        m_.current_->frontend = curFrontend_;
        m_.current_->backend = curBackend_;
        m_.current_->badspec = curBadspec_;
        m_.current_->retiring = curRetiring_;
        m_.codeCursor_ = cursor_;
        m_.fastCodeBytes_ = fastBytes_;
        m_.lastFetchLine_ = lastLine_;
    }

    void
    loadTotals()
    {
        totFrontend_ = m_.total_.frontend;
        totBackend_ = m_.total_.backend;
        totBadspec_ = m_.total_.badspec;
        totRetiring_ = m_.total_.retiring;
    }

    void
    flushTotals()
    {
        m_.total_.frontend = totFrontend_;
        m_.total_.backend = totBackend_;
        m_.total_.badspec = totBadspec_;
        m_.total_.retiring = totRetiring_;
    }
    /// @}

    /// @name Slot charges (Machine::account / charge*, mirrored)
    /// @{
    void
    account(OpKind k, std::uint64_t n)
    {
        const double dn = static_cast<double>(n);
        const double be =
            dn * m_.config_.backendCost[static_cast<int>(k)];
        const double fe = dn * decodeFrontend_;
        curRetiring_ += dn;
        curBackend_ += be;
        curFrontend_ += fe;
        totRetiring_ += dn;
        totBackend_ += be;
        totFrontend_ += fe;
        retired_ += n;
    }

    void
    chargeFrontend(double slots)
    {
        curFrontend_ += slots;
        totFrontend_ += slots;
    }

    void
    chargeBackend(double slots)
    {
        curBackend_ += slots;
        totBackend_ += slots;
    }

    void
    chargeBadspec(double slots)
    {
        curBadspec_ += slots;
        totBadspec_ += slots;
    }
    /// @}

    /// @name Code-fetch cursor (Machine::advanceCode, mirrored)
    /// @{
    void
    advance(std::uint64_t bytes)
    {
        if (bytes <= fastBytes_) {
            fastBytes_ -= static_cast<std::uint32_t>(bytes);
            cursor_ += static_cast<std::uint32_t>(bytes);
            return;
        }
        advanceSlow(bytes);
    }

    /** The walk loop of Machine::advanceCodeSlow, minus the fast-path
     * refill (shared by the slow path and the bulk probe cycle). */
    void
    walk(std::uint64_t bytes)
    {
        while (bytes > 0) {
            if (cursor_ >= codeBytes_)
                cursor_ = 0;
            const std::uint64_t step =
                std::min<std::uint64_t>(bytes, codeBytes_ - cursor_);
            const std::uint32_t firstLine = cursor_ >> 6;
            const std::uint32_t lastLine =
                static_cast<std::uint32_t>((cursor_ + step - 1) >> 6);
            for (std::uint32_t line = firstLine; line <= lastLine;
                 ++line) {
                const std::uint64_t lineAddr =
                    codeBase_ + (static_cast<std::uint64_t>(line) << 6);
                if (lineAddr == lastLine_)
                    continue;
                lastLine_ = lineAddr;
                const double extra = m_.hierarchy_.fetchSweep(lineAddr);
                if (extra > 0.0) {
                    chargeFrontend(extra * issueWidth_ *
                                   fetchStallFactor_);
                }
            }
            cursor_ = static_cast<std::uint32_t>((cursor_ + step) %
                                                 codeBytes_);
            bytes -= step;
        }
    }

    void
    advanceSlow(std::uint64_t bytes)
    {
        if (bytes >= 2 * codeBytes_ && codeBytes_ <= kBulkFootprintMax)
            bytes = fastForwardCycles(bytes);
        walk(bytes);
        // Refill the fast-path budget exactly as the scalar slow path
        // does (a zero tail still refreshes it after a fast-forward).
        const std::uint64_t cursorLine =
            codeBase_ + (static_cast<std::uint64_t>(cursor_ >> 6) << 6);
        if (cursorLine == lastLine_) {
            fastBytes_ = std::min<std::uint32_t>(
                64 - (cursor_ & 63), codeBytes_ - cursor_);
        } else {
            fastBytes_ = 0;
        }
    }

    /**
     * Bulk-advance helper for @p bytes >= 2 footprints: walk one full
     * cycle scalar-wise (cursor returns to its entry offset), then
     * enumerate the steady-state cycle's fetched-line sequence — the
     * span walk with the lastFetchLine skip, which from now on repeats
     * exactly, as every subsequent cycle enters with the same cursor
     * and last-fetched line (runtime-checked below) — and, if every
     * line in it is L1I-resident, apply the remaining full cycles in
     * closed form: all-hit cycles charge no stalls and cannot evict,
     * so only the stamps, MRU memos, and the access counter move, and
     * Cache::fastForwardHits lands them on their exact final values.
     * Returns the bytes still to walk scalar-wise (the partial tail,
     * or everything after the probe cycle when verification fails).
     */
    std::uint64_t
    fastForwardCycles(std::uint64_t bytes)
    {
        if (cursor_ >= codeBytes_)
            cursor_ = 0; // fast path may have parked on the wrap
        walk(codeBytes_); // probe cycle; cursor_ wraps to its entry
        bytes -= codeBytes_;

        // Steady-cycle fetch sequence: spans [cursor_, C) then
        // [0, cursor_). Consecutive lines split at most one line
        // across the two spans, so at most C/64 + 1 fetches.
        std::array<std::uint32_t, kBulkFootprintMax / 64 + 1> idxs;
        std::size_t n = 0;
        std::uint64_t simLast = lastLine_;
        bool resident = true;
        const auto scan = [&](std::uint64_t from, std::uint64_t to) {
            for (std::uint64_t line = from >> 6; line <= (to - 1) >> 6;
                 ++line) {
                const std::uint64_t lineAddr =
                    codeBase_ + (line << 6);
                if (lineAddr == simLast)
                    continue;
                simLast = lineAddr;
                const std::ptrdiff_t idx =
                    m_.hierarchy_.fetchResident(lineAddr);
                if (idx < 0) {
                    resident = false;
                    return;
                }
                idxs[n++] = static_cast<std::uint32_t>(idx);
            }
        };
        if (cursor_ == 0) {
            scan(0, codeBytes_);
        } else {
            scan(cursor_, codeBytes_);
            if (resident)
                scan(0, cursor_);
        }
        // The cycle's last fetched line must match the probe cycle's
        // (both end on the byte before the cursor), or the sequence
        // would not be steady — walk scalar-wise instead.
        if (!resident || simLast != lastLine_)
            return bytes;
        const std::uint64_t cycles = bytes / codeBytes_;
        if (cycles > 0) {
            m_.hierarchy_.fetchFastForward(
                std::span<const std::uint32_t>(idxs.data(), n), cycles);
            bytes -= cycles * codeBytes_;
        }
        return bytes;
    }
    /// @}

    /**
     * Precompute pass over records [@p base, @p base + @p count):
     * partition the block by record kind, replay the trace-determined
     * shadows (stable method key, indirect target history), and hash
     * all keys ahead of execution.
     *
     * Uniform all-branch blocks — tight conditional loops produce
     * them constantly — take a dense path: the site key is one
     * loop-invariant base plus the site lane, so the whole hash sweep
     * vectorizes (AVX-512 when available), and execute() takes the
     * dense branch loop that needs only the hash lane. Mixed blocks
     * with enough branch-family records bracket the in-order chain
     * walk with two dense mix64 sweeps (targets before, finished keys
     * after), so no mix64 sits on the history recurrence; sparse
     * blocks hash inline at their records. The shadows are exact
     * because all prior blocks have executed, so the machine's stable
     * key and indirect history are live at block entry.
     */
    void
    decode(std::size_t base, std::size_t count)
    {
        const std::uint8_t *op = t_.opLane();
        const std::uint32_t *a = t_.aLane();
        const std::uint64_t *b = t_.bLane();

        denseBranch_ = !hinted_ && !m_.profiling_ &&
                       allBranch(op + base, count);
        if (denseBranch_) {
            // key_ stays unwritten: the dense loop never consults the
            // hint table or the site profiles, so only hashes matter.
            kHashSweep(a + base, m_.stableKey_ * kGolden, hash_.data(),
                       count);
            return;
        }

        std::size_t branches = 0, indirects = 0;
        countBranchFamily(op + base, count, branches, indirects);
        if (branches + indirects == 0)
            return; // nothing probes a table; no keys to derive

        // The indirect history chain is the only serial dependence in
        // the decode: hist' = ((hist << 4) ^ mix64(target)) & 0xffff,
        // so a record's key cannot be derived until every earlier
        // indirect's target hash is in. Walked naively that chains one
        // full mix64 latency per indirect — the dominant cost on
        // indirect-heavy traces. Hashing the target lane ahead of the
        // walk takes mix64 off the chain entirely, leaving a two-cycle
        // shift-xor recurrence; likewise the finished keys are hashed
        // in one dense sweep after the walk instead of one at a time
        // inside it. Both sweeps cover the whole block including dead
        // lanes (key_ is zero-initialized so dead reads are defined),
        // which is profitable only when the records are actually
        // there: sparse blocks hash inline where the chain has slack
        // between indirects anyway.
        const bool sweep = (branches + indirects) * 4 >= count;
        if (sweep && indirects > 0)
            kMixSweep(b + base, targetMix_.data(), count);

        std::uint64_t stable = m_.stableKey_;
        std::uint64_t indirectHistory =
            m_.predictor_.indirectHistory();
        for (std::size_t j = 0; j < count; ++j) {
            switch (static_cast<TraceOp>(op[base + j])) {
            case TraceOp::Branch: {
                const std::uint64_t key =
                    stable * kGolden + a[base + j];
                key_[j] = key;
                if (!sweep)
                    hash_[j] = support::mix64(key);
                break;
            }
            case TraceOp::Indirect: {
                if (!sweep)
                    targetMix_[j] = support::mix64(b[base + j]);
                const std::uint64_t site =
                    stable * kGolden + a[base + j];
                const std::uint64_t key =
                    site ^ indirectHistory * kGolden;
                key_[j] = key;
                if (!sweep)
                    hash_[j] = support::mix64(key);
                indirectHistory =
                    ((indirectHistory << 4) ^ targetMix_[j]) & 0xffff;
                break;
            }
            case TraceOp::Method: {
                const UopTrace::MethodArgs &margs =
                    t_.methodArgsAt(a[base + j]);
                stable = margs.stableKey == ~0ULL ? margs.id
                                                  : margs.stableKey;
                break;
            }
            default:
                break;
            }
        }
        if (sweep)
            kMixSweep(key_.data(), hash_.data(), count);
    }

    /**
     * Dense loop for a uniform all-branch block with no hints
     * installed and profiling off (decode() checked both). The gshare
     * registers live in locals for the block, the integer predictor
     * statistics and the retiring lane fold once at the end —
     * conditionals/mispredicts are plain counters, and retiring only
     * ever accumulates integer addends, so a sum of 1.0s below 2^53
     * is exact in any association — and the charge tail is the
     * mask-multiplied branch-free form. Everything that rounds keeps
     * strict record order: backend/frontend decode charges, code-line
     * crossings inside advance(), and mispredict charges interleave
     * exactly as the scalar path interleaves them.
     */
    void
    executeBranchRun(std::size_t base, std::size_t count)
    {
        const std::uint8_t *kind = t_.kindLane();
        BranchPredictor &pred = m_.predictor_;
        std::uint8_t *counters = pred.counters_.data();
        std::uint64_t history = pred.history_;
        std::uint64_t wrong = 0;
        for (std::size_t j = 0; j < count; ++j) {
            curBackend_ += branchBackend_;
            totBackend_ += branchBackend_;
            curFrontend_ += decodeFrontend_;
            totFrontend_ += decodeFrontend_;
            advance(4);
            const bool taken = kind[base + j] != 0;
            const std::uint64_t index =
                (hash_[j] ^ history) &
                (BranchPredictor::kTableSize - 1);
            const std::uint8_t counter = counters[index];
            const bool predicted = counter >= 2;
            const std::uint8_t up =
                counter + static_cast<std::uint8_t>(counter < 3);
            const std::uint8_t down =
                counter - static_cast<std::uint8_t>(counter > 0);
            counters[index] = taken ? up : down;
            history = ((history << 1) | (taken ? 1 : 0)) &
                      (BranchPredictor::kTableSize - 1);
            const bool correct = predicted == taken;
            wrong += static_cast<std::uint64_t>(!correct);
            const double correctD = static_cast<double>(correct);
            const double wrongD = 1.0 - correctD;
            const double badspec = wrongD * mispredictBadspec_;
            const double frontend =
                wrongD * mispredictFrontend_ +
                correctD * (static_cast<double>(taken) *
                            takenFrontend_);
            curBadspec_ += badspec;
            totBadspec_ += badspec;
            curFrontend_ += frontend;
            totFrontend_ += frontend;
        }
        pred.history_ = history;
        pred.conditionals_ += count;
        pred.mispredicts_ += wrong;
        const double retiredD = static_cast<double>(count);
        curRetiring_ += retiredD;
        totRetiring_ += retiredD;
        retired_ += count;
    }

    /** Execute records [@p base, @p base + @p count) strictly in
     * order, performing the exact scalar operation sequence. */
    void
    execute(std::size_t base, std::size_t count)
    {
        if (denseBranch_) {
            executeBranchRun(base, count);
            return;
        }
        const std::uint8_t *op = t_.opLane();
        const std::uint8_t *kind = t_.kindLane();
        const std::uint32_t *a = t_.aLane();
        const std::uint64_t *b = t_.bLane();
        for (std::size_t j = 0; j < count; ++j) {
            const std::size_t i = base + j;
            switch (static_cast<TraceOp>(op[i])) {
            case TraceOp::Ops: {
                const std::uint64_t n = b[i];
                if (n == 0)
                    break;
                account(static_cast<OpKind>(kind[i]), n);
                advance(n * 4);
                break;
            }
            case TraceOp::Memory: {
                account(static_cast<OpKind>(kind[i]), 1);
                advance(4);
                const double extra = m_.hierarchy_.dataSweep(b[i]);
                if (extra > 0.0) {
                    chargeBackend(extra * issueWidth_ *
                                  memStallFactor_);
                }
                break;
            }
            case TraceOp::Stream: {
                const UopTrace::StreamArgs &s = t_.streamArgsAt(a[i]);
                if (s.count == 0)
                    break;
                account(s.kind, s.count);
                advance(s.count * 4);
                const std::uint64_t bytes = s.count * s.stride;
                const std::uint64_t firstLine = s.addr >> 6;
                const std::uint64_t lastLine =
                    (s.addr + (bytes ? bytes - 1 : 0)) >> 6;
                const double extra =
                    m_.hierarchy_.dataRangeSweep(firstLine, lastLine);
                if (extra > 0.0) {
                    chargeBackend(extra * issueWidth_ *
                                  memStallFactor_);
                }
                break;
            }
            case TraceOp::Branch: {
                account(OpKind::Branch, 1);
                advance(4);
                const bool taken = kind[i] != 0;
                if (m_.profiling_) {
                    SiteProfile &prof =
                        m_.profiles_.slotHashed(key_[j], hash_[j]);
                    ++prof.total;
                    if (taken)
                        ++prof.taken;
                }
                // Outcome patterns are exactly what the host branch
                // predictor cannot learn, so the whole
                // predict-train-charge tail runs branch-free: the
                // predictor update uses the cmov variant (hints force
                // the table-consulting path), and the charges are
                // computed by multiplying the constants with {0.0,
                // 1.0} masks — FP selects would compile back into
                // branches, multiplies cannot. Every product is exact
                // (1.0*c == c, 0.0*c == +0.0 for the positive cost
                // constants), and adding the resulting +0.0 to the
                // nonnegative slot accumulators is exact too, so the
                // sums stay bit-identical to the scalar if/else
                // chain.
                const bool correct =
                    hinted_ ? m_.predictor_.conditionalHashed(
                                  key_[j], hash_[j], taken)
                            : m_.predictor_.conditionalPrepared(
                                  hash_[j], taken);
                const double correctD = static_cast<double>(correct);
                const double wrongD = 1.0 - correctD;
                const double badspec = wrongD * mispredictBadspec_;
                const double frontend =
                    wrongD * mispredictFrontend_ +
                    correctD * (static_cast<double>(taken) *
                                takenFrontend_);
                curBadspec_ += badspec;
                totBadspec_ += badspec;
                curFrontend_ += frontend;
                totFrontend_ += frontend;
                break;
            }
            case TraceOp::Indirect: {
                account(OpKind::Branch, 1);
                advance(4);
                const bool correct = m_.predictor_.indirectPrepared(
                    key_[j], hash_[j], b[i], targetMix_[j]);
                // Mask-multiplied charges, same exactness argument as
                // the Branch case above.
                const double correctD = static_cast<double>(correct);
                const double wrongD = 1.0 - correctD;
                const double badspec = wrongD * mispredictBadspec_;
                const double frontend = wrongD * mispredictFrontend_ +
                                        correctD * takenFrontend_;
                curBadspec_ += badspec;
                totBadspec_ += badspec;
                curFrontend_ += frontend;
                totFrontend_ += frontend;
                break;
            }
            case TraceOp::Call: {
                account(OpKind::Call, 1);
                advance(4);
                chargeFrontend(callFrontend_);
                break;
            }
            case TraceOp::Method: {
                // setMethod may resize methods_ (moving current_) and
                // resets the cursor state: flush, switch, reload.
                flushMethod();
                const UopTrace::MethodArgs &margs =
                    t_.methodArgsAt(a[i]);
                m_.setMethod(margs.id, margs.codeBytes,
                             margs.stableKey);
                loadMethod();
                break;
            }
            }
        }
    }

    Machine &m_;
    const UopTrace &t_;

    // Config constants, hoisted once per replay range.
    const double issueWidth_;
    const double decodeFrontend_;
    const double takenFrontend_;
    const double callFrontend_;
    const double memStallFactor_;
    const double fetchStallFactor_;
    const double mispredictBadspec_;
    const double mispredictFrontend_;
    const double branchBackend_;
    /** FDO hints installed? Hinted sites must consult the hint table,
     * so the branch-free predictor variant only runs without them. */
    const bool hinted_;
    /** Set by decode(): current block is uniform Branch records and
     * may take the dense loop (executeBranchRun). */
    bool denseBranch_ = false;

    // Accumulator mirrors (see loadMethod/loadTotals).
    double curFrontend_ = 0, curBackend_ = 0;
    double curBadspec_ = 0, curRetiring_ = 0;
    double totFrontend_ = 0, totBackend_ = 0;
    double totBadspec_ = 0, totRetiring_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t codeBase_ = 0;
    std::uint64_t lastLine_ = ~0ULL;
    std::uint32_t codeBytes_ = 0;
    std::uint32_t cursor_ = 0;
    std::uint32_t fastBytes_ = 0;

    // Per-block decode scratch, indexed by position within the block.
    // key_ is zero-initialized because the dense key-hash sweep reads
    // the whole array, dead lanes included.
    std::array<std::uint64_t, kBlockRecords> key_{};
    std::array<std::uint64_t, kBlockRecords> hash_;
    std::array<std::uint64_t, kBlockRecords> targetMix_;
};

void
Machine::replayBatched(const UopTrace &trace, std::size_t first,
                       std::size_t last)
{
    support::panicIf(last > trace.records() || first > last,
                     "trace: replay range out of bounds");
    if (first == last)
        return;
    const std::uint64_t blocks =
        (last - first + kBlockRecords - 1) / kBlockRecords;
    if (divert_ || batchDisabled()) {
        // Capture and interval recording thread per-record state the
        // kernel does not mirror; ALBERTA_NO_BATCH is the operational
        // escape hatch. Both take the reference scalar loop.
        batchCounters().fallbackBlocks.fetch_add(
            blocks, std::memory_order_relaxed);
        trace.replay(*this, first, last);
        return;
    }
    batchCounters().blocks.fetch_add(blocks,
                                     std::memory_order_relaxed);
    BatchedKernel kernel(*this, trace);
    kernel.run(first, last);
}

} // namespace alberta::topdown
