/**
 * @file
 * Micro-operation vocabulary for the top-down pipeline model.
 *
 * The mini-benchmarks emit abstract micro-ops from their real control
 * flow; the @ref alberta::topdown::Machine classifies the corresponding
 * pipeline slots into the four Intel top-down categories.
 */
#ifndef ALBERTA_TOPDOWN_UOP_H
#define ALBERTA_TOPDOWN_UOP_H

#include <cstdint>

namespace alberta::topdown {

/** Kinds of micro-operations the model distinguishes. */
enum class OpKind : std::uint8_t
{
    IntAlu,  //!< simple integer ALU op (add, shift, compare, logic)
    IntMul,  //!< integer multiply
    IntDiv,  //!< integer divide / modulo
    FpAdd,   //!< floating-point add/sub
    FpMul,   //!< floating-point multiply
    FpDiv,   //!< floating-point divide / sqrt
    Load,    //!< memory read
    Store,   //!< memory write
    Branch,  //!< conditional branch
    Call,    //!< call/return or unconditional jump
    NumKinds
};

/** Number of distinct op kinds. */
inline constexpr int kNumOpKinds = static_cast<int>(OpKind::NumKinds);

/**
 * FNV-style fold used by the model-state digests (Machine, Cache,
 * BranchPredictor): deterministic, order-sensitive, and cheap enough
 * to walk full tag arrays in tests.
 */
inline std::uint64_t
digestFold(std::uint64_t digest, std::uint64_t value)
{
    digest = (digest ^ value) * 0x100000001b3ULL;
    return digest ^ (digest >> 29);
}

/** Slot counts per top-down category (fractional slots allowed). */
struct SlotCounts
{
    double frontend = 0.0; //!< front-end bound slots
    double backend = 0.0;  //!< back-end bound slots
    double badspec = 0.0;  //!< bad-speculation slots
    double retiring = 0.0; //!< retiring slots

    /** Total allocation slots accounted. */
    double
    total() const
    {
        return frontend + backend + badspec + retiring;
    }

    SlotCounts &
    operator+=(const SlotCounts &o)
    {
        frontend += o.frontend;
        backend += o.backend;
        badspec += o.badspec;
        retiring += o.retiring;
        return *this;
    }

    SlotCounts &
    operator-=(const SlotCounts &o)
    {
        frontend -= o.frontend;
        backend -= o.backend;
        badspec -= o.badspec;
        retiring -= o.retiring;
        return *this;
    }
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_UOP_H
