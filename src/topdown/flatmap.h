/**
 * @file
 * Open-addressing hash map from 64-bit keys to small trivially-copyable
 * values, used on the model's hot paths (per-site branch profiles,
 * indirect-target tables) where the pointer chasing and per-node
 * allocations of `std::unordered_map` dominate the lookup cost.
 *
 * Properties the model relies on:
 *  - deterministic: identical insert sequences produce identical table
 *    states (growth points, probe order, iteration order);
 *  - no erase: references returned by @ref slot stay valid until the
 *    next insert triggers a rehash;
 *  - a built-in last-key memo, so the common repeat-site lookup (tight
 *    loops hammering one branch site) skips probing entirely.
 *
 * Entries interleave key and value with key 0 reserved as the
 * empty-slot marker (no separate occupancy flag), so a lookup touches
 * exactly one entry when the probe lands directly — the common case at
 * the map's low post-growth load factor. A real key equal to the
 * marker is held in a dedicated side slot.
 */
#ifndef ALBERTA_TOPDOWN_FLATMAP_H
#define ALBERTA_TOPDOWN_FLATMAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace alberta::topdown {

/** Flat hash map keyed by `uint64_t`; see the file comment. */
template <typename Value>
class FlatKeyMap
{
  public:
    FlatKeyMap() { entries_.resize(kInitialSlots); }

    /**
     * Find-or-insert the entry for @p key; a fresh entry holds a
     * value-initialized `Value`. The reference is valid until the next
     * insertion (a rehash moves entries).
     *
     * @param inserted when non-null, set to whether the key was absent
     */
    Value &
    slot(std::uint64_t key, bool *inserted = nullptr)
    {
        if (key == lastKey_ && lastIndex_ != kNoIndex) {
            if (inserted)
                *inserted = false;
            return lastIndex_ == kZeroIndex ? zeroValue_
                                            : entries_[lastIndex_].value;
        }
        if (key == kEmptyKey)
            return zeroSlot(inserted);
        return probe(key, support::mix64(key), inserted);
    }

    /**
     * @ref slot with the probe hash precomputed by the caller as
     * `support::mix64(key)`. The batched replay kernel hashes whole
     * blocks of keys in one vectorizable sweep, then probes with the
     * results; behavior and resulting table state are identical to
     * calling @ref slot (the full 64-bit hash is stored nowhere, so a
     * rehash between hashing and probing is harmless — the table mask
     * is applied at probe time).
     */
    Value &
    slotHashed(std::uint64_t key, std::uint64_t hash,
               bool *inserted = nullptr)
    {
        if (key == lastKey_ && lastIndex_ != kNoIndex) {
            if (inserted)
                *inserted = false;
            return lastIndex_ == kZeroIndex ? zeroValue_
                                            : entries_[lastIndex_].value;
        }
        if (key == kEmptyKey)
            return zeroSlot(inserted);
        return probe(key, hash, inserted);
    }

    /** Number of distinct keys stored. */
    std::size_t size() const { return count_ + (hasZero_ ? 1 : 0); }

    /** True when no keys are stored. */
    bool empty() const { return size() == 0; }

    /** Remove all entries (capacity is kept). */
    void
    clear()
    {
        for (auto &e : entries_) {
            if (e.key != kEmptyKey) {
                e.key = kEmptyKey;
                e.value = Value{};
            }
        }
        count_ = 0;
        hasZero_ = false;
        zeroValue_ = Value{};
        lastIndex_ = kNoIndex;
    }

    /** Visit every (key, value) pair; order is deterministic for
     * identical insert sequences but otherwise unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (hasZero_)
            fn(kEmptyKey, zeroValue_);
        for (const auto &e : entries_) {
            if (e.key != kEmptyKey)
                fn(e.key, e.value);
        }
    }

  private:
    struct Entry
    {
        std::uint64_t key = kEmptyKey;
        Value value{};
    };

    static constexpr std::uint64_t kEmptyKey = 0;
    static constexpr std::size_t kInitialSlots = 1024; // power of two
    static constexpr std::size_t kNoIndex = ~std::size_t(0);
    static constexpr std::size_t kZeroIndex = kNoIndex - 1;

    /** The empty-marker key's dedicated side slot. */
    Value &
    zeroSlot(bool *inserted)
    {
        if (inserted)
            *inserted = !hasZero_;
        if (!hasZero_) {
            hasZero_ = true;
            zeroValue_ = Value{};
        }
        lastKey_ = kEmptyKey;
        lastIndex_ = kZeroIndex;
        return zeroValue_;
    }

    /** Shared probe-or-insert tail of slot()/slotHashed(); @p hash must
     * be `support::mix64(key)` and @p key must not be the marker. */
    Value &
    probe(std::uint64_t key, std::uint64_t hash, bool *inserted)
    {
        std::size_t idx = findHashed(key, hash);
        if (entries_[idx].key == kEmptyKey) {
            // 3/4 max load, measured, not folklore: halving it shortens
            // probe chains but doubles the table footprint, and for the
            // big indirect-target maps (tens of thousands of keys) the
            // extra cache misses cost more than the probes saved.
            if ((count_ + 1) * 4 > entries_.size() * 3) {
                rehash(entries_.size() * 2);
                idx = findHashed(key, hash);
            }
            entries_[idx].key = key;
            ++count_;
            if (inserted)
                *inserted = true;
        } else if (inserted) {
            *inserted = false;
        }
        lastKey_ = key;
        lastIndex_ = idx;
        return entries_[idx].value;
    }

    /** Index of @p key's slot, or of the empty slot where it belongs.
     * @p key must not be the empty marker. */
    std::size_t
    findIndex(std::uint64_t key) const
    {
        return findHashed(key, support::mix64(key));
    }

    std::size_t
    findHashed(std::uint64_t key, std::uint64_t hash) const
    {
        const std::size_t mask = entries_.size() - 1;
        std::size_t idx = hash & mask;
        while (entries_[idx].key != kEmptyKey && entries_[idx].key != key)
            idx = (idx + 1) & mask;
        return idx;
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<Entry> old;
        old.swap(entries_);
        entries_.resize(new_slots);
        lastIndex_ = kNoIndex;
        for (const auto &e : old) {
            if (e.key == kEmptyKey)
                continue;
            entries_[findIndex(e.key)] = e;
        }
    }

    std::vector<Entry> entries_;
    std::size_t count_ = 0;
    bool hasZero_ = false;
    Value zeroValue_{};
    std::uint64_t lastKey_ = kEmptyKey;
    std::size_t lastIndex_ = kNoIndex;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_FLATMAP_H
