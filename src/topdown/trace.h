/**
 * @file
 * Micro-op trace capture and replay for segment-parallel execution.
 *
 * The machine is a pure observer of benchmark execution: benchmarks
 * never read model state back, so the sequence of calls into the
 * Machine API fully determines every model output. A UopTrace records
 * that call sequence once — with all simulation skipped — and can then
 * replay any sub-range of it into a fresh Machine, reproducing the
 * exact arithmetic of a direct run (replay performs the same calls in
 * the same order, so outputs are bit-identical by construction).
 *
 * Storage is struct-of-arrays: the one-byte opcode and kind streams,
 * the 32-bit and 64-bit operand streams, and rare wide records
 * (streaming accesses, method switches) spilled to side tables. The
 * planning scans (uop counting for cut points, warm-up windows) touch
 * only the narrow streams, and the replay inner loop reads each lane
 * sequentially, so segment planning is memory-bandwidth cheap even for
 * traces with tens of millions of records.
 */
#ifndef ALBERTA_TOPDOWN_TRACE_H
#define ALBERTA_TOPDOWN_TRACE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "topdown/uop.h"

namespace alberta::topdown {

class Machine;

/** Kind of one recorded Machine API call. */
enum class TraceOp : std::uint8_t
{
    Ops,      //!< ops(kind, n): n in the 64-bit lane
    Memory,   //!< load/store: address in the 64-bit lane
    Stream,   //!< stream(...): side-table index in the 32-bit lane
    Branch,   //!< branch(site, taken): site 32-bit, taken in kind lane
    Indirect, //!< indirect(site, target): site 32-bit, target 64-bit
    Call,     //!< call()
    Method,   //!< setMethod(...): side-table index in the 32-bit lane
};

/** A recorded micro-op stream; see the file comment. */
class UopTrace
{
  public:
    /** Arguments of one recorded stream() call. */
    struct StreamArgs
    {
        std::uint64_t addr = 0;
        std::uint64_t count = 0;
        std::uint32_t stride = 0;
        OpKind kind = OpKind::Load;
    };

    /** Arguments of one recorded setMethod() call (pre-layout-scaling,
     * so replay under the same layout reproduces the same footprint). */
    struct MethodArgs
    {
        std::uint32_t id = 0;
        std::uint32_t codeBytes = 0;
        std::uint64_t stableKey = 0;
    };

    /** Number of recorded API calls. */
    std::size_t records() const { return size_; }

    /** Total micro-ops the recorded calls retire. */
    std::uint64_t totalUops() const { return totalUops_; }

    /** Drop all records (capacity kept). */
    void clear();

    /** Reserve room for @p records upcoming appends. */
    void reserve(std::size_t records);

    /// @name Append (driven by Machine capture mode)
    /// @{
    void
    appendOps(OpKind k, std::uint64_t n)
    {
        push(TraceOp::Ops, static_cast<std::uint8_t>(k), 0, n);
        totalUops_ += n;
    }

    void
    appendMemory(OpKind k, std::uint64_t addr)
    {
        push(TraceOp::Memory, static_cast<std::uint8_t>(k), 0, addr);
        ++totalUops_;
    }

    void appendStream(OpKind k, std::uint64_t addr, std::uint64_t count,
                      std::uint32_t stride);

    void
    appendBranch(std::uint32_t site, bool taken)
    {
        push(TraceOp::Branch, taken ? 1 : 0, site, 0);
        ++totalUops_;
    }

    void
    appendIndirect(std::uint32_t site, std::uint64_t target)
    {
        push(TraceOp::Indirect, 0, site, target);
        ++totalUops_;
    }

    void
    appendCall()
    {
        push(TraceOp::Call, 0, 0, 0);
        ++totalUops_;
    }

    void appendMethod(std::uint32_t id, std::uint32_t code_bytes,
                      std::uint64_t stable_key);
    /// @}

    /** Micro-ops retired by record @p i (0 for Method records). */
    std::uint64_t
    uopsOf(std::size_t i) const
    {
        switch (static_cast<TraceOp>(op_[i])) {
        case TraceOp::Ops:
            return b_[i];
        case TraceOp::Stream:
            return streams_[a_[i]].count;
        case TraceOp::Method:
            return 0;
        default:
            return 1;
        }
    }

    /**
     * Replay records [@p first, @p last) into @p machine, performing
     * the identical API calls the original run made. Replaying
     * [0, records()) into a fresh machine reproduces the original
     * run's model outputs bit-identically (given the same config and
     * FDO artifacts installed).
     */
    void replay(Machine &machine, std::size_t first,
                std::size_t last) const;

    /** Replay the whole trace. */
    void
    replayAll(Machine &machine) const
    {
        replay(machine, 0, records());
    }

    /**
     * Replay records [@p first, @p last) through the block-batched
     * kernel (`Machine::replayBatched`): bit-identical outputs to
     * @ref replay, several times faster. Falls back to the scalar
     * path when the machine is capturing or recording intervals, or
     * when `ALBERTA_NO_BATCH` is set in the environment.
     */
    void replayBatched(Machine &machine, std::size_t first,
                       std::size_t last) const;

    /** Batched replay of the whole trace. */
    void
    replayAllBatched(Machine &machine) const
    {
        replayBatched(machine, 0, records());
    }

    /// @name Raw lane access (batched kernel, tests)
    /// The four lockstep lanes, each records() entries long; see the
    /// TraceOp enum for which lane carries which operand per record.
    /// @{
    const std::uint8_t *opLane() const { return op_.get(); }
    const std::uint8_t *kindLane() const { return kind_.get(); }
    const std::uint32_t *aLane() const { return a_.get(); }
    const std::uint64_t *bLane() const { return b_.get(); }
    /** Side-table row behind a Stream record's 32-bit lane index. */
    const StreamArgs &
    streamArgsAt(std::uint32_t idx) const
    {
        return streams_[idx];
    }
    /** Side-table row behind a Method record's 32-bit lane index. */
    const MethodArgs &
    methodArgsAt(std::uint32_t idx) const
    {
        return methods_[idx];
    }
    /// @}

    /**
     * K+1 monotone record indices cutting the trace into @p segments
     * spans of near-equal retired-uop counts; cuts land on record
     * boundaries (a bulk record is never split), so a span's uop count
     * can deviate from total/K by at most the largest single record.
     */
    std::vector<std::size_t> cutPoints(int segments) const;

    /**
     * Index of the last Method record at or before record @p i, or
     * records() when no method switch precedes it (the run is still
     * in the implicit method 0).
     */
    std::size_t lastMethodAt(std::size_t i) const;

    /**
     * Warm-up start for a segment beginning at record @p cut: the
     * largest record index from which replaying up to @p cut retires
     * at least @p warmup_uops micro-ops (clamped to the trace start).
     */
    std::size_t warmStart(std::size_t cut,
                          std::uint64_t warmup_uops) const;

    /**
     * Reuse-aware warm-up plan for the segments delimited by @p cuts
     * (K+1 monotone indices as produced by @ref cutPoints): one warm
     * start record index per segment, chosen so that replaying
     * [warm, cut) rebuilds enough architectural state for the
     * segment's delta to be accurate.
     *
     * The planner scans the trace once, tracking the previous record
     * that touched each piece of long-lived machine state (cache lines
     * for memory and stream records, predictor sites for branch and
     * indirect records). A segment's accesses whose previous touch
     * falls before its warm-up window are *stale*: the replaying
     * machine may decide a hit/miss or prediction differently from the
     * true run. Each segment's warm start is pushed back (deepened)
     * until its stale-access count is within a small budget
     * proportional to its size — short-reuse workloads keep cheap
     * warm-ups, while long-memory workloads (dictionary compression,
     * transposition tables) automatically warm from near the trace
     * start, degrading toward the exact-but-serial replay rather than
     * past the accuracy bound.
     *
     * Every warm start also covers at least @p warmup_uops retired
     * uops (the @ref warmStart floor, for the predictor's short-range
     * history), and segment 0 always starts at record 0 (exact).
     * Deterministic: depends only on the trace contents and arguments.
     */
    std::vector<std::size_t>
    planWarmStarts(std::span<const std::size_t> cuts,
                   std::uint64_t warmup_uops) const;

  private:
    void
    push(TraceOp op, std::uint8_t kind, std::uint32_t a,
         std::uint64_t b)
    {
        if (size_ == capacity_) [[unlikely]]
            grow(size_ + 1);
        op_[size_] = static_cast<std::uint8_t>(op);
        kind_[size_] = kind;
        a_[size_] = a;
        b_[size_] = b;
        ++size_;
    }

    void grow(std::size_t need);

    // The lanes grow in lockstep, so a single capacity check covers an
    // append's four stores; raw buffers keep growth a memcpy with no
    // zero-fill of the tail (a trace can run to gigabytes).
    std::unique_ptr<std::uint8_t[]> op_;   //!< TraceOp lane
    std::unique_ptr<std::uint8_t[]> kind_; //!< OpKind / taken-flag lane
    std::unique_ptr<std::uint32_t[]> a_;   //!< site / side-table idx lane
    std::unique_ptr<std::uint64_t[]> b_;   //!< count / addr / target lane
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
    std::vector<StreamArgs> streams_;
    std::vector<MethodArgs> methods_;
    /** Record indices of Method records, ascending (for lastMethodAt). */
    std::vector<std::size_t> methodMarks_;
    std::uint64_t totalUops_ = 0;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_TRACE_H
