#include "topdown/machine.h"

#include <algorithm>

#include "support/check.h"

namespace alberta::topdown {

Machine::Machine(const MachineConfig &config) : config_(config)
{
    methods_.resize(1); // method 0 = unattributed work
    current_ = &methods_[0];
}

void
Machine::reset()
{
    hierarchy_.reset();
    predictor_.reset();
    methods_.assign(1, SlotCounts{});
    current_ = &methods_[0];
    total_ = SlotCounts{};
    method_ = 0;
    stableKey_ = 0;
    codeBase_ = 0;
    codeBytes_ = 4096;
    codeCursor_ = 0;
    lastFetchLine_ = ~0ULL;
    fastCodeBytes_ = 0;
    retired_ = 0;
    profiles_.clear();
    intervalUops_ = 0;
    nextBoundary_ = 0;
    lastSnapshot_ = SlotCounts{};
    intervals_.clear();
}

void
Machine::setMethod(std::uint32_t id, std::uint32_t code_bytes,
                   std::uint64_t stable_key)
{
    if (id >= methods_.size())
        methods_.resize(id + 1);
    method_ = id;
    current_ = &methods_[id];
    stableKey_ = stable_key == ~0ULL ? id : stable_key;
    double scaled = code_bytes;
    if (layout_) {
        const auto it = layout_->scale.find(stableKey_);
        if (it != layout_->scale.end())
            scaled *= it->second;
    }
    codeBytes_ = std::max<std::uint32_t>(
        64, static_cast<std::uint32_t>(scaled));
    // Methods live in disjoint 16 MiB code regions; tags always differ.
    codeBase_ = (static_cast<std::uint64_t>(id) + 1) << 24;
    codeCursor_ = 0;
    fastCodeBytes_ = 0; // slow path re-establishes the line memo
}

void
Machine::advanceCodeSlow(std::uint64_t bytes)
{
    // Each uop occupies ~4 bytes of code; fetch one line per 64 bytes,
    // skipping the line fetched last: no other fetch has happened since,
    // so it is still resident and most-recently-used — re-accessing it
    // would be a guaranteed hit that cannot change any LRU decision.
    while (bytes > 0) {
        if (codeCursor_ >= codeBytes_)
            codeCursor_ = 0; // fast path may have parked on the wrap
        const std::uint64_t step =
            std::min<std::uint64_t>(bytes, codeBytes_ - codeCursor_);
        const std::uint32_t firstLine = codeCursor_ >> 6;
        const std::uint32_t lastLine =
            static_cast<std::uint32_t>((codeCursor_ + step - 1) >> 6);
        for (std::uint32_t line = firstLine; line <= lastLine; ++line) {
            const std::uint64_t lineAddr =
                codeBase_ + (static_cast<std::uint64_t>(line) << 6);
            if (lineAddr == lastFetchLine_)
                continue;
            lastFetchLine_ = lineAddr;
            const double extra = hierarchy_.fetch(lineAddr);
            if (extra > 0.0) {
                chargeFrontend(extra * config_.issueWidth *
                               config_.fetchStallFactor);
            }
        }
        codeCursor_ =
            static_cast<std::uint32_t>((codeCursor_ + step) % codeBytes_);
        bytes -= step;
    }
    // Refill the fast-path budget: bytes consumable before the cursor
    // leaves the just-fetched line or wraps the code footprint.
    const std::uint64_t cursorLine =
        codeBase_ + (static_cast<std::uint64_t>(codeCursor_ >> 6) << 6);
    if (cursorLine == lastFetchLine_) {
        fastCodeBytes_ = std::min<std::uint32_t>(
            64 - (codeCursor_ & 63), codeBytes_ - codeCursor_);
    } else {
        fastCodeBytes_ = 0;
    }
}

void
Machine::recordIntervals(std::uint64_t uops_per_interval)
{
    support::fatalIf(retired_ != 0 && uops_per_interval != 0,
                     "machine: interval recording must be enabled "
                     "before execution starts");
    intervalUops_ = uops_per_interval;
    nextBoundary_ = uops_per_interval;
    lastSnapshot_ = SlotCounts{};
    intervals_.clear();
}

void
Machine::opsWithIntervals(OpKind k, std::uint64_t n)
{
    // Chunk the bulk report at interval boundaries so one ops(k, n)
    // call is indistinguishable from n single-uop reports: one interval
    // is emitted per boundary crossed, with this call's slots (and its
    // code-fetch stalls) attributed to the intervals they fall in.
    while (n > 0) {
        const std::uint64_t room = nextBoundary_ - retired_;
        const std::uint64_t chunk = n < room ? n : room;
        account(k, chunk);
        advanceCode(chunk * 4);
        if (retired_ == nextBoundary_) {
            SlotCounts delta = total_;
            delta -= lastSnapshot_;
            intervals_.push_back(delta);
            lastSnapshot_ = total_;
            nextBoundary_ += intervalUops_;
        }
        n -= chunk;
    }
}

void
Machine::stream(OpKind kind, std::uint64_t addr, std::uint64_t count,
                std::uint32_t stride)
{
    if (count == 0)
        return;
    support::panicIf(kind != OpKind::Load && kind != OpKind::Store,
                     "stream requires Load or Store");
    ops(kind, count);
    // One hierarchy access per line in the spanned byte range; the
    // per-line extra latencies are summed and charged as one batch.
    const std::uint64_t bytes = count * stride;
    const std::uint64_t firstLine = addr >> 6;
    const std::uint64_t lastLine = (addr + (bytes ? bytes - 1 : 0)) >> 6;
    const double extra = hierarchy_.dataRange(firstLine, lastLine);
    if (extra > 0.0) {
        chargeBackend(extra * config_.issueWidth *
                      config_.memStallFactor);
    }
}

bool
Machine::branch(std::uint32_t site, bool taken)
{
    ops(OpKind::Branch, 1);
    const std::uint64_t key = siteKey(site);
    if (profiling_) {
        SiteProfile &prof = profiles_.slot(key);
        ++prof.total;
        if (taken)
            ++prof.taken;
    }
    const bool correct = predictor_.conditional(key, taken);
    if (!correct) {
        chargeBadspec(config_.mispredictWrongPath * config_.issueWidth);
        chargeFrontend(config_.mispredictRedirect * config_.issueWidth);
    } else if (taken) {
        chargeFrontend(config_.takenBranchFrontend);
    }
    return taken;
}

void
Machine::indirect(std::uint32_t site, std::uint64_t target)
{
    ops(OpKind::Branch, 1);
    const bool correct = predictor_.indirect(siteKey(site), target);
    if (!correct) {
        chargeBadspec(config_.mispredictWrongPath * config_.issueWidth);
        chargeFrontend(config_.mispredictRedirect * config_.issueWidth);
    } else {
        chargeFrontend(config_.takenBranchFrontend);
    }
}

std::unordered_map<std::uint64_t, SiteProfile>
Machine::siteProfiles() const
{
    std::unordered_map<std::uint64_t, SiteProfile> out;
    out.reserve(profiles_.size());
    profiles_.forEach([&out](std::uint64_t key, const SiteProfile &p) {
        out.emplace(key, p);
    });
    return out;
}

stats::TopdownRatios
Machine::ratios() const
{
    const double total = total_.total();
    stats::TopdownRatios r;
    if (total <= 0.0)
        return r;
    r.frontend = total_.frontend / total;
    r.backend = total_.backend / total;
    r.badspec = total_.badspec / total;
    r.retiring = total_.retiring / total;
    return r;
}

} // namespace alberta::topdown
