#include "topdown/machine.h"

#include <algorithm>
#include <bit>

#include "support/check.h"
#include "topdown/trace.h"

namespace alberta::topdown {

namespace {

std::uint64_t
foldSlots(std::uint64_t seed, const SlotCounts &slots)
{
    seed = digestFold(seed, std::bit_cast<std::uint64_t>(slots.frontend));
    seed = digestFold(seed, std::bit_cast<std::uint64_t>(slots.backend));
    seed = digestFold(seed, std::bit_cast<std::uint64_t>(slots.badspec));
    return digestFold(seed,
                      std::bit_cast<std::uint64_t>(slots.retiring));
}

} // namespace

Machine::Machine(const MachineConfig &config) : config_(config)
{
    methods_.resize(1); // method 0 = unattributed work
    current_ = &methods_[0];
}

void
Machine::reset()
{
    hierarchy_.reset();
    predictor_.reset();
    methods_.assign(1, SlotCounts{});
    current_ = &methods_[0];
    total_ = SlotCounts{};
    method_ = 0;
    stableKey_ = 0;
    codeBase_ = 0;
    codeBytes_ = 4096;
    codeCursor_ = 0;
    lastFetchLine_ = ~0ULL;
    fastCodeBytes_ = 0;
    retired_ = 0;
    profiles_.clear();
    intervalUops_ = 0;
    nextBoundary_ = 0;
    lastSnapshot_ = SlotCounts{};
    intervals_.clear();
    capture_ = nullptr;
    divert_ = false;
}

void
Machine::setMethod(std::uint32_t id, std::uint32_t code_bytes,
                   std::uint64_t stable_key)
{
    if (capture_) {
        // Record the raw arguments (pre-layout-scaling), so replay
        // under the same installed layout recomputes the same
        // footprint; no machine state changes while capturing.
        capture_->appendMethod(id, code_bytes, stable_key);
        return;
    }
    if (id >= methods_.size())
        methods_.resize(id + 1);
    method_ = id;
    current_ = &methods_[id];
    stableKey_ = stable_key == ~0ULL ? id : stable_key;
    double scaled = code_bytes;
    if (layout_) {
        const auto it = layout_->scale.find(stableKey_);
        if (it != layout_->scale.end())
            scaled *= it->second;
    }
    codeBytes_ = std::max<std::uint32_t>(
        64, static_cast<std::uint32_t>(scaled));
    // Methods live in disjoint 16 MiB code regions; tags always differ.
    codeBase_ = (static_cast<std::uint64_t>(id) + 1) << 24;
    codeCursor_ = 0;
    fastCodeBytes_ = 0; // slow path re-establishes the line memo
}

void
Machine::advanceCodeSlow(std::uint64_t bytes)
{
    // Each uop occupies ~4 bytes of code; fetch one line per 64 bytes,
    // skipping the line fetched last: no other fetch has happened since,
    // so it is still resident and most-recently-used — re-accessing it
    // would be a guaranteed hit that cannot change any LRU decision.
    while (bytes > 0) {
        if (codeCursor_ >= codeBytes_)
            codeCursor_ = 0; // fast path may have parked on the wrap
        const std::uint64_t step =
            std::min<std::uint64_t>(bytes, codeBytes_ - codeCursor_);
        const std::uint32_t firstLine = codeCursor_ >> 6;
        const std::uint32_t lastLine =
            static_cast<std::uint32_t>((codeCursor_ + step - 1) >> 6);
        for (std::uint32_t line = firstLine; line <= lastLine; ++line) {
            const std::uint64_t lineAddr =
                codeBase_ + (static_cast<std::uint64_t>(line) << 6);
            if (lineAddr == lastFetchLine_)
                continue;
            lastFetchLine_ = lineAddr;
            const double extra = hierarchy_.fetch(lineAddr);
            if (extra > 0.0) {
                chargeFrontend(extra * config_.issueWidth *
                               config_.fetchStallFactor);
            }
        }
        codeCursor_ =
            static_cast<std::uint32_t>((codeCursor_ + step) % codeBytes_);
        bytes -= step;
    }
    // Refill the fast-path budget: bytes consumable before the cursor
    // leaves the just-fetched line or wraps the code footprint.
    const std::uint64_t cursorLine =
        codeBase_ + (static_cast<std::uint64_t>(codeCursor_ >> 6) << 6);
    if (cursorLine == lastFetchLine_) {
        fastCodeBytes_ = std::min<std::uint32_t>(
            64 - (codeCursor_ & 63), codeBytes_ - codeCursor_);
    } else {
        fastCodeBytes_ = 0;
    }
}

void
Machine::recordIntervals(std::uint64_t uops_per_interval)
{
    support::fatalIf(retired_ != 0 && uops_per_interval != 0,
                     "machine: interval recording must be enabled "
                     "before execution starts");
    support::fatalIf(capture_ != nullptr && uops_per_interval != 0,
                     "machine: interval recording and trace capture "
                     "are mutually exclusive");
    intervalUops_ = uops_per_interval;
    nextBoundary_ = uops_per_interval;
    lastSnapshot_ = SlotCounts{};
    intervals_.clear();
    updateDivert();
}

void
Machine::captureTo(UopTrace *trace)
{
    support::fatalIf(trace != nullptr && retired_ != 0,
                     "machine: trace capture must be enabled before "
                     "execution starts");
    support::fatalIf(trace != nullptr && intervalUops_ != 0,
                     "machine: interval recording and trace capture "
                     "are mutually exclusive");
    capture_ = trace;
    updateDivert();
}

void
Machine::opsDiverted(OpKind k, std::uint64_t n)
{
    if (capture_) {
        capture_->appendOps(k, n);
        retired_ += n;
        return;
    }
    opsWithIntervals(k, n);
}

void
Machine::captureMemory(OpKind kind, std::uint64_t addr)
{
    capture_->appendMemory(kind, addr);
    ++retired_;
}

void
Machine::captureCall()
{
    capture_->appendCall();
    ++retired_;
}

void
Machine::opsWithIntervals(OpKind k, std::uint64_t n)
{
    // Chunk the bulk report at interval boundaries so one ops(k, n)
    // call is indistinguishable from n single-uop reports: one interval
    // is emitted per boundary crossed, with this call's slots (and its
    // code-fetch stalls) attributed to the intervals they fall in.
    while (n > 0) {
        const std::uint64_t room = nextBoundary_ - retired_;
        const std::uint64_t chunk = n < room ? n : room;
        account(k, chunk);
        advanceCode(chunk * 4);
        if (retired_ == nextBoundary_) {
            SlotCounts delta = total_;
            delta -= lastSnapshot_;
            intervals_.push_back(delta);
            lastSnapshot_ = total_;
            nextBoundary_ += intervalUops_;
        }
        n -= chunk;
    }
}

void
Machine::stream(OpKind kind, std::uint64_t addr, std::uint64_t count,
                std::uint32_t stride)
{
    if (count == 0)
        return;
    support::panicIf(kind != OpKind::Load && kind != OpKind::Store,
                     "stream requires Load or Store");
    if (capture_) {
        capture_->appendStream(kind, addr, count, stride);
        retired_ += count;
        return;
    }
    ops(kind, count);
    // One hierarchy access per line in the spanned byte range; the
    // per-line extra latencies are summed and charged as one batch.
    const std::uint64_t bytes = count * stride;
    const std::uint64_t firstLine = addr >> 6;
    const std::uint64_t lastLine = (addr + (bytes ? bytes - 1 : 0)) >> 6;
    const double extra = hierarchy_.dataRange(firstLine, lastLine);
    if (extra > 0.0) {
        chargeBackend(extra * config_.issueWidth *
                      config_.memStallFactor);
    }
}

bool
Machine::branch(std::uint32_t site, bool taken)
{
    if (capture_) {
        capture_->appendBranch(site, taken);
        ++retired_;
        return taken;
    }
    ops(OpKind::Branch, 1);
    const std::uint64_t key = siteKey(site);
    if (profiling_) {
        SiteProfile &prof = profiles_.slot(key);
        ++prof.total;
        if (taken)
            ++prof.taken;
    }
    const bool correct = predictor_.conditional(key, taken);
    if (!correct) {
        chargeBadspec(config_.mispredictWrongPath * config_.issueWidth);
        chargeFrontend(config_.mispredictRedirect * config_.issueWidth);
    } else if (taken) {
        chargeFrontend(config_.takenBranchFrontend);
    }
    return taken;
}

void
Machine::indirect(std::uint32_t site, std::uint64_t target)
{
    if (capture_) {
        capture_->appendIndirect(site, target);
        ++retired_;
        return;
    }
    ops(OpKind::Branch, 1);
    const bool correct = predictor_.indirect(siteKey(site), target);
    if (!correct) {
        chargeBadspec(config_.mispredictWrongPath * config_.issueWidth);
        chargeFrontend(config_.mispredictRedirect * config_.issueWidth);
    } else {
        chargeFrontend(config_.takenBranchFrontend);
    }
}

MachineSnapshot
Machine::snapshot() const
{
    support::fatalIf(capture_ != nullptr,
                     "machine: cannot snapshot while capturing (no "
                     "architectural state accumulates)");
    MachineSnapshot snap;
    snap.hierarchy = hierarchy_;
    snap.predictor = predictor_;
    snap.methods = methods_;
    snap.total = total_;
    snap.method = method_;
    snap.stableKey = stableKey_;
    snap.codeBase = codeBase_;
    snap.codeBytes = codeBytes_;
    snap.codeCursor = codeCursor_;
    snap.retired = retired_;
    snap.lastFetchLine = lastFetchLine_;
    snap.fastCodeBytes = fastCodeBytes_;
    snap.profiling = profiling_;
    snap.profiles = profiles_;
    snap.intervalUops = intervalUops_;
    snap.nextBoundary = nextBoundary_;
    snap.lastSnapshot = lastSnapshot_;
    snap.intervals = intervals_;
    return snap;
}

void
Machine::restore(const MachineSnapshot &snap)
{
    support::fatalIf(capture_ != nullptr,
                     "machine: cannot restore while capturing");
    support::fatalIf(snap.methods.empty(),
                     "machine: snapshot has no method slots");
    // The hints pointer rides along inside the copied predictor, but
    // hint installation is this machine's configuration — keep it.
    const BranchHints *hints = predictor_.hints();
    hierarchy_ = snap.hierarchy;
    predictor_ = snap.predictor;
    predictor_.setHints(hints);
    methods_ = snap.methods;
    total_ = snap.total;
    method_ = snap.method;
    current_ = &methods_[method_];
    stableKey_ = snap.stableKey;
    codeBase_ = snap.codeBase;
    codeBytes_ = snap.codeBytes;
    codeCursor_ = snap.codeCursor;
    retired_ = snap.retired;
    lastFetchLine_ = snap.lastFetchLine;
    fastCodeBytes_ = snap.fastCodeBytes;
    profiling_ = snap.profiling;
    profiles_ = snap.profiles;
    intervalUops_ = snap.intervalUops;
    nextBoundary_ = snap.nextBoundary;
    lastSnapshot_ = snap.lastSnapshot;
    intervals_ = snap.intervals;
    updateDivert();
}

std::uint64_t
Machine::stateDigest() const
{
    std::uint64_t seed = 0x5eed5eed5eed5eedULL;
    seed = hierarchy_.digest(seed);
    seed = predictor_.digest(seed);
    for (const SlotCounts &m : methods_)
        seed = foldSlots(seed, m);
    seed = foldSlots(seed, total_);
    seed = digestFold(seed, method_);
    seed = digestFold(seed, stableKey_);
    seed = digestFold(seed, codeBase_);
    seed = digestFold(seed, codeBytes_);
    seed = digestFold(seed, codeCursor_);
    seed = digestFold(seed, retired_);
    seed = digestFold(seed, lastFetchLine_);
    seed = digestFold(seed, fastCodeBytes_);
    seed = digestFold(seed, profiling_ ? 1 : 0);
    profiles_.forEach(
        [&seed](std::uint64_t key, const SiteProfile &p) {
            seed = digestFold(seed, key);
            seed = digestFold(seed, p.taken);
            seed = digestFold(seed, p.total);
        });
    seed = digestFold(seed, intervalUops_);
    seed = digestFold(seed, nextBoundary_);
    seed = foldSlots(seed, lastSnapshot_);
    for (const SlotCounts &interval : intervals_)
        seed = foldSlots(seed, interval);
    return seed;
}

std::unordered_map<std::uint64_t, SiteProfile>
Machine::siteProfiles() const
{
    std::unordered_map<std::uint64_t, SiteProfile> out;
    out.reserve(profiles_.size());
    profiles_.forEach([&out](std::uint64_t key, const SiteProfile &p) {
        out.emplace(key, p);
    });
    return out;
}

stats::TopdownRatios
Machine::ratios() const
{
    const double total = total_.total();
    stats::TopdownRatios r;
    if (total <= 0.0)
        return r;
    r.frontend = total_.frontend / total;
    r.backend = total_.backend / total;
    r.badspec = total_.badspec / total;
    r.retiring = total_.retiring / total;
    return r;
}

} // namespace alberta::topdown
