#include "topdown/machine.h"

#include <algorithm>

#include "support/check.h"

namespace alberta::topdown {

Machine::Machine(const MachineConfig &config) : config_(config)
{
    methods_.resize(1); // method 0 = unattributed work
}

void
Machine::reset()
{
    hierarchy_.reset();
    predictor_.reset();
    methods_.assign(1, SlotCounts{});
    method_ = 0;
    stableKey_ = 0;
    codeBase_ = 0;
    codeBytes_ = 4096;
    codeCursor_ = 0;
    retired_ = 0;
    profiles_.clear();
    intervalUops_ = 0;
    nextBoundary_ = 0;
    lastSnapshot_ = SlotCounts{};
    intervals_.clear();
}

void
Machine::setMethod(std::uint32_t id, std::uint32_t code_bytes,
                   std::uint64_t stable_key)
{
    if (id >= methods_.size())
        methods_.resize(id + 1);
    method_ = id;
    stableKey_ = stable_key == ~0ULL ? id : stable_key;
    double scaled = code_bytes;
    if (layout_) {
        const auto it = layout_->scale.find(stableKey_);
        if (it != layout_->scale.end())
            scaled *= it->second;
    }
    codeBytes_ = std::max<std::uint32_t>(
        64, static_cast<std::uint32_t>(scaled));
    // Methods live in disjoint 16 MiB code regions; tags always differ.
    codeBase_ = (static_cast<std::uint64_t>(id) + 1) << 24;
    codeCursor_ = 0;
}

void
Machine::advanceCode(std::uint64_t uops)
{
    // Each uop occupies ~4 bytes of code; fetch one line per 64 bytes.
    std::uint64_t bytes = uops * 4;
    while (bytes > 0) {
        const std::uint32_t before = codeCursor_ >> 6;
        const std::uint64_t step =
            std::min<std::uint64_t>(bytes, codeBytes_ - codeCursor_);
        const std::uint32_t firstLine = before;
        const std::uint32_t lastLine =
            static_cast<std::uint32_t>((codeCursor_ + step - 1) >> 6);
        for (std::uint32_t line = firstLine; line <= lastLine; ++line) {
            const double extra =
                hierarchy_.fetch(codeBase_ + (static_cast<std::uint64_t>(
                                                  line)
                                              << 6));
            if (extra > 0.0) {
                current().frontend += extra * config_.issueWidth *
                                      config_.fetchStallFactor;
            }
        }
        codeCursor_ =
            static_cast<std::uint32_t>((codeCursor_ + step) % codeBytes_);
        bytes -= step;
    }
}

void
Machine::recordIntervals(std::uint64_t uops_per_interval)
{
    support::fatalIf(retired_ != 0 && uops_per_interval != 0,
                     "machine: interval recording must be enabled "
                     "before execution starts");
    intervalUops_ = uops_per_interval;
    nextBoundary_ = uops_per_interval;
    lastSnapshot_ = SlotCounts{};
    intervals_.clear();
}

void
Machine::ops(OpKind k, std::uint64_t n)
{
    if (n == 0)
        return;
    SlotCounts &slots = current();
    const double dn = static_cast<double>(n);
    slots.retiring += dn;
    slots.backend += dn * config_.backendCost[static_cast<int>(k)];
    slots.frontend += dn * config_.decodeFrontend;
    retired_ += n;
    if (intervalUops_ != 0 && retired_ >= nextBoundary_) {
        const SlotCounts now = totals();
        SlotCounts delta = now;
        delta.frontend -= lastSnapshot_.frontend;
        delta.backend -= lastSnapshot_.backend;
        delta.badspec -= lastSnapshot_.badspec;
        delta.retiring -= lastSnapshot_.retiring;
        intervals_.push_back(delta);
        lastSnapshot_ = now;
        nextBoundary_ += intervalUops_;
    }
    advanceCode(n);
}

void
Machine::memory(OpKind kind, std::uint64_t addr)
{
    ops(kind, 1);
    const double extra = hierarchy_.data(addr);
    if (extra > 0.0) {
        current().backend +=
            extra * config_.issueWidth * config_.memStallFactor;
    }
}

void
Machine::stream(OpKind kind, std::uint64_t addr, std::uint64_t count,
                std::uint32_t stride)
{
    if (count == 0)
        return;
    support::panicIf(kind != OpKind::Load && kind != OpKind::Store,
                     "stream requires Load or Store");
    ops(kind, count);
    // One hierarchy access per distinct line touched by the stream.
    const std::uint64_t bytes = count * stride;
    const std::uint64_t firstLine = addr >> 6;
    const std::uint64_t lastLine = (addr + (bytes ? bytes - 1 : 0)) >> 6;
    for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
        const double extra = hierarchy_.data(line << 6);
        if (extra > 0.0) {
            current().backend +=
                extra * config_.issueWidth * config_.memStallFactor;
        }
    }
}

bool
Machine::branch(std::uint32_t site, bool taken)
{
    ops(OpKind::Branch, 1);
    const std::uint64_t key = siteKey(site);
    if (profiling_) {
        auto &prof = profiles_[key];
        ++prof.total;
        if (taken)
            ++prof.taken;
    }
    const bool correct = predictor_.conditional(key, taken);
    SlotCounts &slots = current();
    if (!correct) {
        slots.badspec +=
            config_.mispredictWrongPath * config_.issueWidth;
        slots.frontend +=
            config_.mispredictRedirect * config_.issueWidth;
    } else if (taken) {
        slots.frontend += config_.takenBranchFrontend;
    }
    return taken;
}

void
Machine::indirect(std::uint32_t site, std::uint64_t target)
{
    ops(OpKind::Branch, 1);
    const bool correct = predictor_.indirect(siteKey(site), target);
    SlotCounts &slots = current();
    if (!correct) {
        slots.badspec +=
            config_.mispredictWrongPath * config_.issueWidth;
        slots.frontend +=
            config_.mispredictRedirect * config_.issueWidth;
    } else {
        slots.frontend += config_.takenBranchFrontend;
    }
}

void
Machine::call()
{
    ops(OpKind::Call, 1);
    current().frontend += config_.callFrontend;
}

SlotCounts
Machine::totals() const
{
    SlotCounts sum;
    for (const auto &m : methods_)
        sum += m;
    return sum;
}

stats::TopdownRatios
Machine::ratios() const
{
    const SlotCounts sum = totals();
    const double total = sum.total();
    stats::TopdownRatios r;
    if (total <= 0.0)
        return r;
    r.frontend = sum.frontend / total;
    r.backend = sum.backend / total;
    r.badspec = sum.badspec / total;
    r.retiring = sum.retiring / total;
    return r;
}

} // namespace alberta::topdown
