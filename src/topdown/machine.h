/**
 * @file
 * Slot-accounting pipeline model implementing the Intel top-down
 * classification (front-end bound, back-end bound, bad speculation,
 * retiring) over micro-op streams emitted by the mini-benchmarks.
 *
 * This is the reproduction's stand-in for the PMU counters + VTune
 * top-down analysis used in the paper: it derives the same four
 * fractions from the same microarchitectural causes (fetch stalls,
 * mispredict squashes, memory and long-latency stalls), so workload-
 * induced shifts in behaviour are preserved even though absolute values
 * differ from real hardware.
 *
 * Every micro-op the benchmarks emit funnels through @ref ops, so the
 * accounting inner loop is organized as a header-inlined fast path with
 * cold out-of-line slow paths (see the "Model hot path" section of
 * DESIGN.md for the invariants):
 *  - a running grand total makes @ref totals / @ref ratios O(1);
 *  - @ref advanceCode consumes code bytes within the already-fetched
 *    instruction line without touching the cache hierarchy;
 *  - interval-boundary bookkeeping lives in a cold out-of-line path;
 *  - branch-site profiles use a flat open-addressing table with a
 *    last-site memo instead of `std::unordered_map`.
 */
#ifndef ALBERTA_TOPDOWN_MACHINE_H
#define ALBERTA_TOPDOWN_MACHINE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/summary.h"
#include "topdown/branch.h"
#include "topdown/cache.h"
#include "topdown/flatmap.h"
#include "topdown/uop.h"

namespace alberta::topdown {

class UopTrace;
class BatchedKernel;

/**
 * Process-wide batched-replay observability counters (relaxed atomics,
 * bumped once per `Machine::replayBatched` call): how many 256-record
 * blocks went through the batched kernel vs. fell back to the scalar
 * replay loop (capture/interval mode, or `ALBERTA_NO_BATCH` set).
 * The runtime layer mirrors deltas into `obs::Registry` so `--stats`
 * can report fast-path coverage.
 */
struct BatchCounters
{
    std::atomic<std::uint64_t> blocks{0};
    std::atomic<std::uint64_t> fallbackBlocks{0};
};

/** The process-wide counter instance. */
BatchCounters &batchCounters();

/** Tunable model parameters (defaults approximate a 4-wide OoO core). */
struct MachineConfig
{
    int issueWidth = 4;          //!< allocation slots per cycle
    double decodeFrontend = 0.06;   //!< front-end slots per uop baseline
    double takenBranchFrontend = 0.5; //!< fetch-break cost per taken branch
    double callFrontend = 0.6;      //!< fetch-redirect cost per call
    double mispredictWrongPath = 8.0; //!< wrong-path issue cycles
    double mispredictRedirect = 5.0;  //!< post-recovery fetch-bubble cycles
    double memStallFactor = 0.35;   //!< fraction of miss latency not hidden
    double fetchStallFactor = 0.8;  //!< fraction of I-miss latency exposed
    /** Back-end slots charged per uop of each kind (dependency stalls). */
    std::array<double, kNumOpKinds> backendCost = {
        0.10, // IntAlu
        0.60, // IntMul
        16.0, // IntDiv
        0.80, // FpAdd
        1.00, // FpMul
        14.0, // FpDiv
        0.55, // Load (L1-hit baseline)
        0.15, // Store
        0.05, // Branch
        0.10, // Call
    };
};

/** Per-site conditional-branch profile collected for FDO. */
struct SiteProfile
{
    std::uint64_t taken = 0;
    std::uint64_t total = 0;
};

/** FDO code-layout decisions: per-method code-footprint scaling. */
struct CodeLayout
{
    /**
     * Stable method key -> multiplicative scale on the method's code
     * bytes. Hot/cold splitting yields scales < 1 for hot methods.
     */
    std::unordered_map<std::uint64_t, double> scale;
};

/**
 * Complete architectural state of a @ref Machine at one point in a
 * run: predictor tables, cache tag/stamp/MRU arrays, per-method slot
 * attribution, code-fetch cursor (including `lastFetchLine_`), branch
 * profiles, and interval bookkeeping. Every component is a plain
 * value copy, so snapshots are self-contained and can be restored
 * into any machine built with the same @ref MachineConfig.
 *
 * Configuration pointers (FDO hints, code layout) are not part of the
 * snapshot: they describe the experiment, not the machine's learned
 * state, and the restoring machine keeps its own.
 */
struct MachineSnapshot
{
    MemoryHierarchy hierarchy;
    BranchPredictor predictor;
    std::vector<SlotCounts> methods;
    SlotCounts total;
    std::uint32_t method = 0;
    std::uint64_t stableKey = 0;
    std::uint64_t codeBase = 0;
    std::uint32_t codeBytes = 4096;
    std::uint32_t codeCursor = 0;
    std::uint64_t retired = 0;
    std::uint64_t lastFetchLine = ~0ULL;
    std::uint32_t fastCodeBytes = 0;
    bool profiling = false;
    FlatKeyMap<SiteProfile> profiles;
    std::uint64_t intervalUops = 0;
    std::uint64_t nextBoundary = 0;
    SlotCounts lastSnapshot;
    std::vector<SlotCounts> intervals;
};

/**
 * The top-down slot-accounting machine.
 *
 * Benchmarks report micro-ops through the narrow API below; the machine
 * attributes allocation slots to the four top-down categories and to the
 * currently active method (for the paper's method-coverage metric).
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});

    /** Discard all accounted slots and learned predictor/cache state. */
    void reset();

    /**
     * Switch slot attribution to method @p id.
     *
     * @param id dense method identifier assigned by the runtime
     * @param code_bytes approximate static code footprint of the method,
     *        used to model instruction-cache pressure
     * @param stable_key run-independent method identity (a hash of the
     *        method name); FDO hints and layout decisions are keyed on
     *        it so profiles transfer between runs. Defaults to @p id.
     */
    void setMethod(std::uint32_t id, std::uint32_t code_bytes,
                   std::uint64_t stable_key = ~0ULL);

    /** Report one micro-op of kind @p k (no memory, no control flow). */
    void
    op(OpKind k)
    {
        ops(k, 1);
    }

    /**
     * Report @p n consecutive micro-ops of kind @p k.
     *
     * Hot path: three fused per-category adds into the current method
     * and the running total, then code-footprint advance. Interval
     * recording and trace capture (both off in normal characterization
     * runs) divert to cold out-of-line paths behind a single fused
     * flag test.
     */
    void
    ops(OpKind k, std::uint64_t n)
    {
        if (n == 0)
            return;
        if (divert_) {
            opsDiverted(k, n);
            return;
        }
        account(k, n);
        advanceCode(n * 4);
    }

    /** Report one load from logical address @p addr. */
    void load(std::uint64_t addr) { memory(OpKind::Load, addr); }

    /** Report one store to logical address @p addr. */
    void store(std::uint64_t addr) { memory(OpKind::Store, addr); }

    /**
     * Report a streaming access of @p count elements of @p stride bytes
     * starting at @p addr (one cache access per line in the spanned
     * byte range, charged as one batched stall).
     */
    void stream(OpKind kind, std::uint64_t addr, std::uint64_t count,
                std::uint32_t stride);

    /**
     * Report one conditional branch at local site @p site with outcome
     * @p taken; returns @p taken so it can wrap a condition in place.
     */
    bool branch(std::uint32_t site, bool taken);

    /** Report one indirect branch (virtual dispatch, interpreter). */
    void indirect(std::uint32_t site, std::uint64_t target);

    /** Report one call / unconditional control transfer. */
    void
    call()
    {
        if (capture_) {
            captureCall();
            return;
        }
        ops(OpKind::Call, 1);
        chargeFrontend(config_.callFrontend);
    }

    /**
     * Record every subsequent API call into @p trace instead of
     * simulating it (nullptr returns to normal simulation). While
     * capturing, only @ref retiredOps advances — predictor, caches,
     * and slot attribution stay untouched — so a capture run costs
     * roughly the benchmark's own compute plus an append per call.
     * Replaying the trace into a fresh machine reproduces a direct
     * run's outputs bit-identically (see UopTrace).
     *
     * Must be enabled on a fresh machine before any ops are reported,
     * and is mutually exclusive with interval recording; @ref reset
     * clears capture mode.
     */
    void captureTo(UopTrace *trace);

    /**
     * Replay trace records [@p first, @p last) through the block-
     * batched kernel: records are consumed in fixed-size blocks whose
     * hashable operands (branch site keys, indirect target mixes) are
     * precomputed in dense sweeps before an in-order execute pass that
     * performs the exact scalar operation sequence — outputs are
     * bit-identical to `UopTrace::replay` by construction. Falls back
     * to the scalar replay loop (and counts the blocks as fallbacks in
     * @ref batchCounters) when this machine is capturing or recording
     * intervals, or when `ALBERTA_NO_BATCH` is set and non-zero in the
     * environment.
     */
    void replayBatched(const UopTrace &trace, std::size_t first,
                       std::size_t last);

    /** Copy the complete architectural state (see MachineSnapshot). */
    MachineSnapshot snapshot() const;

    /**
     * Adopt the state in @p snap, as if this machine had performed the
     * snapshotted machine's history itself. The machine must have been
     * built with the same MachineConfig; FDO hint/layout installation
     * is configuration and is kept, not overwritten. Not available
     * while capturing.
     */
    void restore(const MachineSnapshot &snap);

    /**
     * Order-sensitive digest over the complete architectural state —
     * everything @ref snapshot captures. Equal digests mean the two
     * machines produce identical outputs for any identical future
     * call sequence; used to verify reset and snapshot/restore
     * completeness.
     */
    std::uint64_t stateDigest() const;

    /** Sum of all slots across methods (O(1): kept incrementally). */
    const SlotCounts &totals() const { return total_; }

    /** The four top-down fractions of all accounted slots (O(1)). */
    stats::TopdownRatios ratios() const;

    /** Per-method slot counts indexed by method id. */
    const std::vector<SlotCounts> &perMethod() const { return methods_; }

    /** Estimated core cycles (total slots / issue width). */
    double cycles() const { return total_.total() / config_.issueWidth; }

    /** Total micro-ops retired. */
    std::uint64_t retiredOps() const { return retired_; }

    /** Enable or disable FDO profile collection (off by default). */
    void collectProfile(bool enabled) { profiling_ = enabled; }

    /**
     * Record execution intervals of @p uops_per_interval retired
     * micro-ops each (SimPoint-style phase analysis; 0 disables).
     * Must be set before any ops are reported.
     */
    void recordIntervals(std::uint64_t uops_per_interval);

    /**
     * Per-interval slot counts (deltas, one entry per completed
     * interval). A bulk @ref ops report that crosses several interval
     * boundaries contributes one interval per boundary, so phase
     * vectors are independent of the reporting stride. The trailing
     * partial interval is not included.
     */
    const std::vector<SlotCounts> &intervals() const
    {
        return intervals_;
    }

    /**
     * Collected conditional-branch profiles keyed by global site key,
     * materialized from the internal flat table (cold; intended for
     * end-of-run FDO harvesting).
     */
    std::unordered_map<std::uint64_t, SiteProfile> siteProfiles() const;

    /** Install FDO branch hints (nullptr to clear). */
    void setHints(const BranchHints *hints) { predictor_.setHints(hints); }

    /** Install FDO code-layout scaling (nullptr to clear). */
    void setLayout(const CodeLayout *layout) { layout_ = layout; }

    /** Branch predictor statistics (for tests and reports). */
    const BranchPredictor &predictor() const { return predictor_; }

    /** Memory hierarchy statistics (for tests and reports). */
    const MemoryHierarchy &hierarchy() const { return hierarchy_; }

    /** Global site key for the current method and local @p site:
     * derived from the stable method key so it is identical across
     * runs and workloads. */
    std::uint64_t
    siteKey(std::uint32_t site) const
    {
        return stableKey_ * 0x9e3779b97f4a7c15ULL + site;
    }

  private:
    /** Charge @p n uops of kind @p k (per-method + running total). */
    void
    account(OpKind k, std::uint64_t n)
    {
        const double dn = static_cast<double>(n);
        const double be = dn * config_.backendCost[static_cast<int>(k)];
        const double fe = dn * config_.decodeFrontend;
        SlotCounts &m = *current_;
        m.retiring += dn;
        m.backend += be;
        m.frontend += fe;
        total_.retiring += dn;
        total_.backend += be;
        total_.frontend += fe;
        retired_ += n;
    }

    void
    chargeFrontend(double slots)
    {
        current_->frontend += slots;
        total_.frontend += slots;
    }

    void
    chargeBackend(double slots)
    {
        current_->backend += slots;
        total_.backend += slots;
    }

    void
    chargeBadspec(double slots)
    {
        current_->badspec += slots;
        total_.badspec += slots;
    }

    void
    memory(OpKind kind, std::uint64_t addr)
    {
        if (capture_) {
            captureMemory(kind, addr);
            return;
        }
        ops(kind, 1);
        const double extra = hierarchy_.data(addr);
        if (extra > 0.0) {
            chargeBackend(extra * config_.issueWidth *
                          config_.memStallFactor);
        }
    }

    /**
     * Consume @p bytes of code. Fast path: the bytes fit inside the
     * instruction line fetched last, which is still L1I-resident (no
     * other fetch can have evicted it), so no cache access is needed
     * and no hit/miss decision is skipped that could change state.
     */
    void
    advanceCode(std::uint64_t bytes)
    {
        if (bytes <= fastCodeBytes_) {
            fastCodeBytes_ -= static_cast<std::uint32_t>(bytes);
            codeCursor_ += static_cast<std::uint32_t>(bytes);
            return;
        }
        advanceCodeSlow(bytes);
    }

    void advanceCodeSlow(std::uint64_t bytes);
    void opsWithIntervals(OpKind k, std::uint64_t n);

    /** Cold ops() tail shared by interval recording and capture. */
    void opsDiverted(OpKind k, std::uint64_t n);
    void captureMemory(OpKind kind, std::uint64_t addr);
    void captureCall();

    /** Keep the fused ops() divert flag in sync with its sources. */
    void
    updateDivert()
    {
        divert_ = intervalUops_ != 0 || capture_ != nullptr;
    }

    MachineConfig config_;
    MemoryHierarchy hierarchy_;
    BranchPredictor predictor_;
    const CodeLayout *layout_ = nullptr;

    std::vector<SlotCounts> methods_;
    SlotCounts *current_ = nullptr; //!< &methods_[method_], cached
    SlotCounts total_;              //!< running sum over all methods
    std::uint32_t method_ = 0;
    std::uint64_t stableKey_ = 0;
    std::uint64_t codeBase_ = 0;
    std::uint32_t codeBytes_ = 4096;
    std::uint32_t codeCursor_ = 0;
    std::uint64_t retired_ = 0;

    /** Absolute address of the last instruction line fetched (~0 =
     * none); fetches of this line are skipped — it is necessarily
     * still resident and most-recently-used in the L1I. */
    std::uint64_t lastFetchLine_ = ~0ULL;
    /** Bytes consumable from codeCursor_ without leaving the last
     * fetched line or wrapping the method's code footprint. */
    std::uint32_t fastCodeBytes_ = 0;

    bool profiling_ = false;
    FlatKeyMap<SiteProfile> profiles_;

    std::uint64_t intervalUops_ = 0;   //!< 0 = interval recording off
    std::uint64_t nextBoundary_ = 0;
    SlotCounts lastSnapshot_;
    std::vector<SlotCounts> intervals_;

    /** Capture sink (nullptr = simulate normally). */
    UopTrace *capture_ = nullptr;
    /** True when ops() must leave the fast path (intervals or
     * capture); kept in sync by @ref updateDivert. */
    bool divert_ = false;

    /** The batched replay kernel mirrors the accumulator fields into
     * locals for the duration of a replay range (see batched.cc). */
    friend class BatchedKernel;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_MACHINE_H
