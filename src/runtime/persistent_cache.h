/**
 * @file
 * Versioned, content-addressed on-disk store for deterministic model
 * runs — the persistence layer behind runtime::ResultCache, so a
 * second *process* characterizing the same suite starts warm.
 *
 * Every entry is one file in the cache directory, addressed by the
 * (benchmark, workload name, workload content fingerprint) triple. The
 * file carries a format version, a model-version fingerprint (derived
 * from a deterministic probe run through the execution stack, so any
 * semantic change to the model invalidates old entries automatically),
 * the identifying triple, and a checksummed binary payload holding the
 * CachedRun. Writes go to a unique temporary file followed by an
 * atomic rename: concurrent writers are last-writer-wins and readers
 * can never observe a torn entry. Corrupted, truncated, or
 * version-mismatched entries are silently treated as misses.
 */
#ifndef ALBERTA_RUNTIME_PERSISTENT_CACHE_H
#define ALBERTA_RUNTIME_PERSISTENT_CACHE_H

#include <atomic>
#include <cstdint>
#include <string>

#include "runtime/result_cache.h"

namespace alberta::obs {
class Counter;
class Registry;
} // namespace alberta::obs

namespace alberta::runtime {

/** On-disk result store; see the file comment for the format. */
class PersistentCache
{
  public:
    /** Bump when the on-disk layout itself changes shape. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /**
     * Open (creating if needed) the store at @p dir.
     *
     * @param modelVersion entries written by a different model version
     *        are treated as misses; defaults to
     *        @ref modelVersionFingerprint. Tests override it to
     *        exercise the rejection path.
     * @throws support::FatalError when @p dir is empty or cannot be
     *         created/used as a directory.
     */
    explicit PersistentCache(std::string dir,
                             std::uint64_t modelVersion =
                                 modelVersionFingerprint());

    /** Probe the store; counts a disk hit, miss, or corrupt entry. */
    bool load(const Benchmark &benchmark, const Workload &workload,
              CachedRun *out) const;

    /**
     * Persist @p run (best effort: I/O failures drop the write and
     * bump @ref writeFailures, they never fail the caller).
     */
    void store(const Benchmark &benchmark, const Workload &workload,
               const CachedRun &run) const;

    const std::string &dir() const { return dir_; }
    std::uint64_t modelVersion() const { return modelVersion_; }

    /** Entry file path for (benchmark, workload) — exposed so tests
     * can truncate or bit-flip entries. */
    std::string entryPath(const Benchmark &benchmark,
                          const Workload &workload) const;

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    /** Entries rejected as unreadable (truncated, bad magic, payload
     * checksum mismatch) — a subset of @ref misses. */
    std::uint64_t corrupt() const { return corrupt_.load(); }
    std::uint64_t writes() const { return writes_.load(); }
    std::uint64_t writeFailures() const
    {
        return writeFailures_.load();
    }

    /**
     * Mirror activity into @p metrics as `cache.disk_hits`,
     * `cache.disk_misses`, `cache.disk_corrupt`, and
     * `cache.disk_writes` (non-owning; nullptr detaches).
     */
    void attachMetrics(obs::Registry *metrics);

    /**
     * Fingerprint of the current model semantics: a small fixed probe
     * workload driven through the execution stack (top-down machine,
     * coverage profiler, checksum accumulator) with every observable
     * output folded in. Any change to the model's decisions changes
     * the fingerprint, so stale disk entries miss instead of serving
     * results the current code would not produce.
     */
    static std::uint64_t modelVersionFingerprint();

  private:
    std::string dir_;
    std::uint64_t modelVersion_ = 0;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> corrupt_{0};
    mutable std::atomic<std::uint64_t> writes_{0};
    mutable std::atomic<std::uint64_t> writeFailures_{0};
    obs::Counter *hitCounter_ = nullptr;
    obs::Counter *missCounter_ = nullptr;
    obs::Counter *corruptCounter_ = nullptr;
    obs::Counter *writeCounter_ = nullptr;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_PERSISTENT_CACHE_H
