#include "runtime/benchmark.h"

#include <chrono>

#include "support/check.h"

namespace alberta::runtime {

RunMeasurement
runOnce(const Benchmark &benchmark, const Workload &workload)
{
    ExecutionContext context;
    const auto start = std::chrono::steady_clock::now();
    benchmark.run(workload, context);
    const auto stop = std::chrono::steady_clock::now();

    RunMeasurement m;
    m.seconds = std::chrono::duration<double>(stop - start).count();
    m.simCycles = context.machine().cycles();
    m.retiredOps = context.machine().retiredOps();
    m.checksum = context.checksum();
    m.topdown = context.machine().ratios();
    m.coverage = context.coverage();
    return m;
}

WorkloadMeasurement
runRepeated(const Benchmark &benchmark, const Workload &workload,
            int repetitions)
{
    support::fatalIf(repetitions < 1, "need at least one repetition");
    WorkloadMeasurement agg;
    agg.workload = workload.name;
    double sum = 0.0;
    for (int rep = 0; rep < repetitions; ++rep) {
        RunMeasurement m = runOnce(benchmark, workload);
        if (rep == 0) {
            agg.representative = m;
        } else {
            support::panicIf(
                m.checksum != agg.representative.checksum,
                benchmark.name(), "/", workload.name,
                ": nondeterministic checksum across repetitions");
        }
        agg.runSeconds.push_back(m.seconds);
        sum += m.seconds;
    }
    agg.meanSeconds = sum / repetitions;
    return agg;
}

Workload
findWorkload(const Benchmark &benchmark, std::string_view name)
{
    for (auto &w : benchmark.workloads()) {
        if (w.name == name)
            return w;
    }
    support::fatal(benchmark.name(), " has no workload named '",
                   std::string(name), "'");
}

} // namespace alberta::runtime
