#include "runtime/persistent_cache.h"

#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/obs.h"
#include "runtime/context.h"
#include "support/binio.h"
#include "support/check.h"
#include "support/rng.h"

namespace alberta::runtime {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x414c4252; // "ALBR"

/** Serialize the full CachedRun payload (doubles bit-exact). */
std::string
encodeRun(const CachedRun &run)
{
    support::ByteWriter w;
    const RunMeasurement &m = run.measurement;
    w.writeDouble(m.seconds);
    w.writeDouble(m.simCycles);
    w.writeU64(m.retiredOps);
    w.writeU64(m.checksum);
    for (const double ratio : m.topdown.asArray())
        w.writeDouble(ratio);
    w.writeU64(m.coverage.size());
    for (const auto &[method, fraction] : m.coverage) {
        w.writeString(method);
        w.writeDouble(fraction);
    }
    w.writeU64(run.timedSeconds.size());
    for (const double t : run.timedSeconds)
        w.writeDouble(t);
    return w.bytes();
}

bool
decodeRun(std::string_view payload, CachedRun *out)
{
    support::ByteReader r(payload);
    RunMeasurement &m = out->measurement;
    std::array<double, 4> ratios{};
    std::uint64_t coverageCount = 0;
    if (!r.readDouble(&m.seconds) || !r.readDouble(&m.simCycles) ||
        !r.readU64(&m.retiredOps) || !r.readU64(&m.checksum))
        return false;
    for (double &ratio : ratios) {
        if (!r.readDouble(&ratio))
            return false;
    }
    m.topdown.frontend = ratios[0];
    m.topdown.backend = ratios[1];
    m.topdown.badspec = ratios[2];
    m.topdown.retiring = ratios[3];
    if (!r.readU64(&coverageCount))
        return false;
    m.coverage.clear();
    for (std::uint64_t i = 0; i < coverageCount; ++i) {
        std::string method;
        double fraction = 0.0;
        if (!r.readString(&method) || !r.readDouble(&fraction))
            return false;
        m.coverage.emplace(std::move(method), fraction);
    }
    std::uint64_t timedCount = 0;
    if (!r.readU64(&timedCount) || timedCount > r.remaining() / 8)
        return false;
    out->timedSeconds.clear();
    out->timedSeconds.reserve(static_cast<std::size_t>(timedCount));
    for (std::uint64_t i = 0; i < timedCount; ++i) {
        double t = 0.0;
        if (!r.readDouble(&t))
            return false;
        out->timedSeconds.push_back(t);
    }
    return r.ok() && r.atEnd();
}

/** Keep entry names readable while staying filesystem-safe. */
std::string
sanitize(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '-' || c == '_';
        out.push_back(keep ? c : '_');
    }
    return out;
}

std::string
hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Unique-enough temporary suffix for atomic-rename writes. */
std::string
tmpSuffix()
{
    static std::atomic<std::uint64_t> counter{0};
    const auto tid = std::hash<std::thread::id>{}(
        std::this_thread::get_id());
    std::ostringstream os;
    os << ".tmp." << hex16(tid) << '.'
       << counter.fetch_add(1, std::memory_order_relaxed);
    return os.str();
}

} // namespace

PersistentCache::PersistentCache(std::string dir,
                                 std::uint64_t modelVersion)
    : dir_(std::move(dir)), modelVersion_(modelVersion)
{
    support::fatalIf(dir_.empty(),
                     "persistent cache: --cache-dir must not be empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    support::fatalIf(ec || !fs::is_directory(dir_),
                     "persistent cache: cannot create cache directory '",
                     dir_, "'", ec ? (": " + ec.message()) : "");
}

std::string
PersistentCache::entryPath(const Benchmark &benchmark,
                           const Workload &workload) const
{
    const std::uint64_t fp =
        ResultCache::fingerprint(benchmark, workload);
    return (fs::path(dir_) /
            (sanitize(benchmark.name()) + '-' +
             sanitize(workload.name) + '-' + hex16(fp) + ".run"))
        .string();
}

bool
PersistentCache::load(const Benchmark &benchmark,
                      const Workload &workload, CachedRun *out) const
{
    const auto miss = [&](bool isCorrupt) {
        ++misses_;
        if (missCounter_)
            missCounter_->add(1);
        if (isCorrupt) {
            ++corrupt_;
            if (corruptCounter_)
                corruptCounter_->add(1);
        }
        return false;
    };

    std::ifstream in(entryPath(benchmark, workload),
                     std::ios::binary);
    if (!in)
        return miss(false); // absent: a plain (cold) miss
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof())
        return miss(true);
    const std::string bytes = buffer.str();

    support::ByteReader r(bytes);
    std::uint32_t magic = 0, format = 0;
    std::uint64_t version = 0, fingerprint = 0, checksum = 0;
    std::string benchName, workloadName, payload;
    if (!r.readU32(&magic) || magic != kMagic)
        return miss(true);
    if (!r.readU32(&format) || !r.readU64(&version) ||
        !r.readString(&benchName) || !r.readString(&workloadName) ||
        !r.readU64(&fingerprint) || !r.readString(&payload) ||
        !r.readU64(&checksum) || !r.atEnd())
        return miss(true);
    if (support::fnv1a(payload) != checksum)
        return miss(true);
    // Well-formed but written for different content or a different
    // model: a silent miss, not corruption.
    if (format != kFormatVersion || version != modelVersion_ ||
        benchName != benchmark.name() ||
        workloadName != workload.name ||
        fingerprint != ResultCache::fingerprint(benchmark, workload))
        return miss(false);
    CachedRun run;
    if (!decodeRun(payload, &run))
        return miss(true);
    if (out)
        *out = std::move(run);
    ++hits_;
    if (hitCounter_)
        hitCounter_->add(1);
    return true;
}

void
PersistentCache::store(const Benchmark &benchmark,
                       const Workload &workload,
                       const CachedRun &run) const
{
    support::ByteWriter w;
    const std::string payload = encodeRun(run);
    w.writeU32(kMagic);
    w.writeU32(kFormatVersion);
    w.writeU64(modelVersion_);
    w.writeString(benchmark.name());
    w.writeString(workload.name);
    w.writeU64(ResultCache::fingerprint(benchmark, workload));
    w.writeString(payload);
    w.writeU64(support::fnv1a(payload));

    const std::string path = entryPath(benchmark, workload);
    const std::string tmp = path + tmpSuffix();
    const auto failed = [&] {
        ++writeFailures_;
        std::error_code ignored;
        fs::remove(tmp, ignored);
    };
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            failed();
            return;
        }
        out.write(w.bytes().data(),
                  static_cast<std::streamsize>(w.bytes().size()));
        if (!out.good()) {
            failed();
            return;
        }
    }
    // POSIX rename is atomic: readers see the old entry or the new
    // one, never a torn write; concurrent writers are last-writer-wins.
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        failed();
        return;
    }
    ++writes_;
    if (writeCounter_)
        writeCounter_->add(1);
}

void
PersistentCache::attachMetrics(obs::Registry *metrics)
{
    hitCounter_ =
        metrics ? &metrics->counter("cache.disk_hits") : nullptr;
    missCounter_ =
        metrics ? &metrics->counter("cache.disk_misses") : nullptr;
    corruptCounter_ =
        metrics ? &metrics->counter("cache.disk_corrupt") : nullptr;
    writeCounter_ =
        metrics ? &metrics->counter("cache.disk_writes") : nullptr;
}

std::uint64_t
PersistentCache::modelVersionFingerprint()
{
    // Computed once: the probe is deterministic, so the fingerprint is
    // a process-wide constant for a given build of the model.
    static const std::uint64_t fingerprint = [] {
        ExecutionContext context;
        topdown::Machine &m = context.machine();
        support::Rng rng(0xa1b357a9);
        {
            auto scope = context.method("probe.alu", 2048);
            m.ops(topdown::OpKind::IntAlu, 4096);
            m.ops(topdown::OpKind::IntMul, 512);
            m.ops(topdown::OpKind::FpAdd, 1024);
        }
        {
            auto scope = context.method("probe.branchy", 1024);
            for (int i = 0; i < 4096; ++i) {
                m.branch(static_cast<std::uint32_t>(i % 7),
                         (i & 3) != 0);
                m.branch(100, rng.chance(0.85));
                m.indirect(7, rng.below(12));
            }
        }
        {
            auto scope = context.method("probe.memory", 4096);
            for (int i = 0; i < 4096; ++i)
                m.load(0x1000000ULL + rng.below(256 * 1024));
            m.stream(topdown::OpKind::Load, 0x4000000ULL, 4096, 8);
            m.stream(topdown::OpKind::Store, 0x4800000ULL, 2048, 8);
        }
        context.consume(m.retiredOps());
        context.consume(m.cycles());
        const auto ratios = m.ratios().asArray();
        for (const double ratio : ratios)
            context.consume(std::bit_cast<std::uint64_t>(ratio));
        const auto &h = m.hierarchy();
        for (const topdown::Cache *cache :
             {&h.l1d(), &h.l1i(), &h.l2(), &h.l3()}) {
            context.consume(cache->accesses());
            context.consume(cache->misses());
        }
        context.consume(m.predictor().conditionals());
        context.consume(m.predictor().mispredicts());
        for (const auto &[method, fraction] : context.coverage()) {
            context.consume(support::fnv1a(method));
            context.consume(std::bit_cast<std::uint64_t>(fraction));
        }
        return context.checksum();
    }();
    return fingerprint;
}

} // namespace alberta::runtime
