#include "runtime/engine.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "support/check.h"

namespace alberta::runtime {

namespace {

std::string
ledgerPath(const std::string &cacheDir)
{
    if (cacheDir.empty())
        return {}; // in-memory ledger
    return (std::filesystem::path(cacheDir) / "cost_ledger.tsv")
        .string();
}

} // namespace

Engine::Engine(Config config)
    : sink_(std::move(config.sink)), tracePath_(config.tracePath),
      cacheDir_(config.cacheDir), tracer_(sink_.get()),
      executor_(config.jobs),
      disk_(cacheDir_.empty()
                ? nullptr
                : std::make_unique<PersistentCache>(cacheDir_)),
      ledger_(ledgerPath(cacheDir_))
{
    executor_.attachObservability(&tracer_, &metrics_);
    cache_.attachMetrics(&metrics_);
    if (disk_) {
        disk_->attachMetrics(&metrics_);
        cache_.attachPersistent(disk_.get());
    }
}

void
Engine::flushTrace()
{
    if (sink_)
        sink_->flush();
}

std::vector<obs::MetricSample>
Engine::metricsSnapshot() const
{
    auto out = metrics_.snapshot();
    const auto addCounter = [&](const char *name, std::uint64_t v) {
        obs::MetricSample s;
        s.name = name;
        s.kind = "counter";
        s.count = v;
        s.value = static_cast<double>(v);
        out.push_back(std::move(s));
    };
    const auto addGauge = [&](const char *name, double v) {
        obs::MetricSample s;
        s.name = name;
        s.kind = "gauge";
        s.value = v;
        out.push_back(std::move(s));
    };

    const ExecutorStats es = executor_.stats();
    addGauge("executor.jobs", executor_.jobs());
    addCounter("executor.tasks_run", es.tasksRun);
    addGauge("executor.queue_seconds", es.queueSeconds);
    addGauge("executor.run_seconds", es.runSeconds);
    addCounter("cache.entries", cache_.size());
    addGauge("scheduler.ledger_entries",
             static_cast<double>(ledger_.size()));
    addCounter("session.uops_retired", stats_.uopsRetired);
    addGauge("session.uops_per_second", stats_.uopsPerSecond());
    addGauge("session.run_seconds", stats_.runSeconds);

    std::sort(out.begin(), out.end(),
              [](const obs::MetricSample &a,
                 const obs::MetricSample &b) { return a.name < b.name; });
    return out;
}

Engine::Builder &
Engine::Builder::cacheDirOption(const std::string &flagValue,
                                bool flagGiven)
{
    if (flagGiven) {
        support::fatalIf(flagValue.empty(),
                         "--cache-dir requires a non-empty directory");
        config_.cacheDir = flagValue;
        return *this;
    }
    const char *env = std::getenv("ALBERTA_CACHE_DIR");
    config_.cacheDir = env ? env : "";
    return *this;
}

Engine::Builder &
Engine::Builder::traceFile(const std::string &path)
{
    if (path.empty()) {
        config_.sink.reset();
        config_.tracePath.clear();
    } else {
        config_.sink = std::make_unique<obs::JsonLinesSink>(path);
        config_.tracePath = path;
    }
    return *this;
}

Engine::Builder &
Engine::Builder::traceSink(std::unique_ptr<obs::TraceSink> sink)
{
    config_.sink = std::move(sink);
    config_.tracePath.clear();
    return *this;
}

} // namespace alberta::runtime
