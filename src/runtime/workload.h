/**
 * @file
 * Workload representation: a named, seeded input for one benchmark,
 * carrying a parameter bag and any generated input artifacts.
 */
#ifndef ALBERTA_RUNTIME_WORKLOAD_H
#define ALBERTA_RUNTIME_WORKLOAD_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace alberta::runtime {

/** Typed key/value parameter bag for workload configuration. */
class Params
{
  public:
    /** Set a string parameter. */
    Params &set(std::string_view key, std::string_view value);
    /** Set a string parameter (keeps literals away from the bool
     * overload). */
    Params &
    set(std::string_view key, const char *value)
    {
        return set(key, std::string_view(value));
    }
    /** Set an integer parameter. */
    Params &set(std::string_view key, long long value);
    /** Set a floating-point parameter. */
    Params &set(std::string_view key, double value);
    /** Set a boolean parameter. */
    Params &set(std::string_view key, bool value);

    /** String parameter or @p fallback when absent. */
    std::string getString(std::string_view key,
                          std::string_view fallback = "") const;
    /** Integer parameter or @p fallback when absent. */
    long long getInt(std::string_view key, long long fallback = 0) const;
    /** Floating-point parameter or @p fallback when absent. */
    double getDouble(std::string_view key, double fallback = 0.0) const;
    /** Boolean parameter or @p fallback when absent. */
    bool getBool(std::string_view key, bool fallback = false) const;

    /** True if @p key is present. */
    bool has(std::string_view key) const;

    /** All parameters in key order (for manifests and reports). */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::string> entries_;
};

/**
 * One workload of a benchmark.
 *
 * The conventional names follow SPEC and the paper: "refrate" and
 * "train" for the distributed inputs, "test" for the functional check,
 * and "alberta.<family>-<n>" for the new workloads.
 */
struct Workload
{
    std::string name;        //!< e.g. "refrate" or "alberta.city-1"
    std::uint64_t seed = 0;  //!< generator seed; fully determines inputs
    Params params;           //!< structured parameters
    /** Named generated artifacts (input "files" kept in memory). */
    std::map<std::string, std::string> files;

    /** Convenience: content of artifact @p file (fatal if absent). */
    const std::string &file(std::string_view file) const;

    /** True for the SPEC-distributed reference workload. */
    bool isRefrate() const { return name == "refrate"; }
    /** True for any Alberta-generated workload. */
    bool isAlberta() const { return name.rfind("alberta.", 0) == 0; }
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_WORKLOAD_H
