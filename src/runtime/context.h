/**
 * @file
 * Execution context handed to a benchmark run: bundles the top-down
 * machine, the method registry + coverage profiler, and a verification
 * checksum accumulator.
 */
#ifndef ALBERTA_RUNTIME_CONTEXT_H
#define ALBERTA_RUNTIME_CONTEXT_H

#include <cstdint>
#include <string_view>

#include "profile/coverage.h"
#include "topdown/machine.h"

namespace alberta::runtime {

/**
 * Per-run execution environment.
 *
 * Benchmarks instrument their hot code with @ref method scopes and
 * micro-op reports through @ref machine, and fold observable outputs
 * into @ref consume so the runner can verify determinism.
 */
class ExecutionContext
{
  public:
    ExecutionContext();

    /** The top-down slot-accounting machine for this run. */
    topdown::Machine &machine() { return machine_; }

    /**
     * Enter a named method scope (RAII); all micro-ops reported while
     * the scope is alive are attributed to @p name.
     *
     * @param code_bytes approximate static code footprint; fixed by the
     *        first use of @p name in this context
     */
    profile::MethodScope method(std::string_view name,
                                std::uint32_t code_bytes = 1024);

    /** Fold an observable output value into the run checksum. */
    void
    consume(std::uint64_t value)
    {
        checksum_ = (checksum_ ^ value) * 0x100000001b3ULL;
        checksum_ ^= checksum_ >> 29;
    }

    /** Fold a floating-point output into the run checksum (quantized). */
    void
    consume(double value)
    {
        consume(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(value * 4096.0)));
    }

    /** Verification checksum over consumed outputs. */
    std::uint64_t checksum() const { return checksum_; }

    /** Micro-ops retired by this run so far (machine passthrough). */
    std::uint64_t retiredOps() const { return machine_.retiredOps(); }

    /** Per-method coverage fractions observed so far. */
    stats::CoverageMap coverage() const
    {
        return profiler_.coverage(registry_);
    }

    /** The method registry backing this context's coverage scopes
     * (read-only; used by the segment runner to resolve the dense
     * method ids a captured trace attributes slots to). */
    const profile::MethodRegistry &registry() const
    {
        return registry_;
    }

    /** Reset machine, profiler, and checksum for a fresh run. */
    void reset();

    /**
     * Install FDO artifacts before a run (pass nullptr to clear);
     * the pointed-to objects must outlive the run.
     */
    void
    installOptimization(const topdown::BranchHints *hints,
                        const topdown::CodeLayout *layout)
    {
        machine_.setHints(hints);
        machine_.setLayout(layout);
    }

  private:
    topdown::Machine machine_;
    profile::MethodRegistry registry_;
    profile::CoverageProfiler profiler_;
    std::uint64_t checksum_ = 0;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_CONTEXT_H
