/**
 * @file
 * Checkpoint-and-splice segment parallelism: run one workload's model
 * as K concurrent segment replays and splice the per-segment slot
 * deltas back into a single RunMeasurement.
 *
 * The pipeline has three stages:
 *
 *  1. **Record** — the benchmark executes once with the machine in
 *     trace-capture mode: all simulation is skipped, so this pass
 *     costs the benchmark's own compute plus an append per machine
 *     call. It yields the uop trace, the run checksum, and the
 *     method-name table.
 *  2. **Replay** — the trace is cut into K spans at record boundaries
 *     near s·U/K retired uops. Each span replays independently on a
 *     fresh machine: a warm-up window of the preceding trace
 *     (default 1M uops) approximates the predictor/cache state the
 *     segment would have inherited, a `Machine::snapshot` taken at
 *     the span start serves as the baseline, and the segment's
 *     contribution is the end-state minus that baseline.
 *  3. **Splice** — per-segment global and per-method slot deltas are
 *     summed and normalized into top-down fractions and coverage.
 *
 * Accuracy: segment 0 replays from the true initial state, so K=1
 * splicing is bit-identical to a direct run. For K>1 the warm-up
 * approximation and the reassociated floating-point sums bound the
 * per-fraction error; the pinned bound (tested against the checksum
 * suite) is < 1e-3 absolute per top-down fraction, an order of
 * magnitude inside the 0.1-percentage-point target. Spliced results
 * are deterministic for a fixed (K, warm-up) pair regardless of how
 * the replays are scheduled, and are cached under their own keys so
 * exact and spliced entries never collide.
 *
 * `replaySegmentsExact` chains the segments sequentially through
 * snapshot/restore handoff instead of warm-up approximation; it is
 * bit-identical to a direct run and exists to validate the snapshot
 * machinery and the trace itself.
 */
#ifndef ALBERTA_RUNTIME_SEGMENT_H
#define ALBERTA_RUNTIME_SEGMENT_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "runtime/result_cache.h"
#include "topdown/trace.h"

namespace alberta::obs {
class Registry;
} // namespace alberta::obs

namespace alberta::runtime {

/** Default warm-up window ahead of each segment, in retired uops. */
inline constexpr std::uint64_t kDefaultSegmentWarmupUops = 1'000'000;

/** How a segmented run executes. */
struct SegmentOptions
{
    /** Number of segments (>= 1; 1 degenerates to a full replay). */
    int segments = 2;
    /** Warm-up uops replayed ahead of each segment (approximates the
     * inherited architectural state; larger = more accurate, slower). */
    std::uint64_t warmupUops = kDefaultSegmentWarmupUops;
    /** Pool for concurrent segment replays (nullptr = replay on the
     * calling thread; results are identical either way). */
    Executor *executor = nullptr;
    /** Result cache for the spliced result and per-segment deltas
     * (nullptr = uncached). */
    ResultCache *cache = nullptr;
    /** Metrics sink for per-pass observability (nullptr = none):
     * `segment.record_uops`/`segment.replay_uops` counters and
     * `segment.record_seconds`/`segment.replay_seconds` histograms,
     * from which `--stats` derives per-pass uops/s. */
    obs::Registry *metrics = nullptr;
};

/** The record pass's outputs: everything replays and splices need. */
struct SegmentPlan
{
    /** The captured uop stream (shared: segment tasks replay
     * concurrently from the same trace). */
    std::shared_ptr<const topdown::UopTrace> trace;
    /** K+1 monotone record indices delimiting the segments. */
    std::vector<std::size_t> cuts;
    /** Per-segment warm-up start records from the reuse-aware planner
     * (see UopTrace::planWarmStarts); warmStarts[0] is always 0. */
    std::vector<std::size_t> warmStarts;
    int segments = 1;
    std::uint64_t warmupUops = kDefaultSegmentWarmupUops;
    /** Run checksum from the record pass (capture does not touch the
     * checksum path, so this equals a direct run's checksum). */
    std::uint64_t checksum = 0;
    /** Total retired uops (equals a direct run's count exactly). */
    std::uint64_t retiredOps = 0;
    /** Thread CPU seconds of the record pass plus segment planning —
     * the serial prefix every replay waits on. */
    double recordSeconds = 0.0;
    /** Dense method id -> name, snapshot of the record context's
     * registry (replays attribute slots by id; splice maps back). */
    std::vector<std::string> methodNames;
};

/** One segment's contribution: deltas over its warm baseline. */
struct SegmentDelta
{
    topdown::SlotCounts slots;        //!< global slot delta
    std::vector<double> methodTotals; //!< per-method-id total-slot delta
    std::uint64_t retired = 0;        //!< uops retired in the segment
    double seconds = 0.0;             //!< thread CPU secs of the replay
};

/**
 * Record pass: execute @p workload once in capture mode and plan the
 * segment cuts. @p segments must be >= 1.
 */
SegmentPlan recordSegments(const Benchmark &benchmark,
                           const Workload &workload, int segments,
                           std::uint64_t warmup_uops =
                               kDefaultSegmentWarmupUops);

/** Replay segment @p segment of @p plan (warm-up + delta). */
SegmentDelta replaySegment(const SegmentPlan &plan, int segment);

/**
 * Cached @ref replaySegment: probes @p cache under the segment's own
 * key (see @ref segmentWorkload) and inserts on miss. @p workload is
 * the base workload the plan was recorded from.
 */
SegmentDelta measureSegment(const SegmentPlan &plan, int segment,
                            const Benchmark &benchmark,
                            const Workload &workload,
                            ResultCache *cache);

/** Splice per-segment deltas into one measurement (see file docs).
 * `seconds` reports the segmented critical path: record seconds plus
 * the longest single replay. */
RunMeasurement spliceSegments(const SegmentPlan &plan,
                              std::span<const SegmentDelta> deltas);

/**
 * The full record -> replay -> splice pipeline for one workload,
 * parallel across segments when @p options carries an executor and
 * memoized under splice-specific keys when it carries a cache.
 */
RunMeasurement runSegmented(const Benchmark &benchmark,
                            const Workload &workload,
                            const SegmentOptions &options);

/**
 * Validation path: replay the plan's segments strictly in order,
 * handing architectural state from segment to segment through
 * `Machine::snapshot`/`restore` instead of warm-up approximation.
 * Bit-identical to `runOnce` on the same workload (tested), including
 * the coverage map; `seconds` is the summed replay time.
 */
RunMeasurement replaySegmentsExact(const SegmentPlan &plan);

/**
 * Trace-backed exact run: capture the workload once, then replay the
 * whole trace through the block-batched kernel
 * (`Machine::replayBatched`). Model outputs — checksum, retired ops,
 * top-down fractions, coverage — are bit-identical to @ref runOnce;
 * `seconds` is the record pass plus the batched replay in thread CPU
 * time. Faster than a direct run whenever the batched replay's
 * speedup outweighs the capture overhead (long traces, hot loops).
 */
RunMeasurement runBatchedExact(const Benchmark &benchmark,
                               const Workload &workload);

/**
 * Cached @ref runBatchedExact. Because the outputs are bit-identical
 * to a direct run, entries share the plain workload key with
 * @ref measureCached — a batched run can serve a later exact lookup
 * and vice versa.
 */
RunMeasurement measureBatchedExact(const Benchmark &benchmark,
                                   const Workload &workload,
                                   ResultCache *cache);

/**
 * Synthetic workload keying the spliced result of @p workload at a
 * given segmentation: name gains a "#spliced-k<K>-w<W>" suffix and
 * the parameter bag gains `__segments`/`__warmup_uops`, so both the
 * cache key string and the content fingerprint differ from the exact
 * run's entry.
 */
Workload splicedWorkload(const Workload &workload, int segments,
                         std::uint64_t warmup_uops);

/** Synthetic workload keying one segment's delta ("#seg<i>of<K>-w<W>"
 * suffix plus `__segment` in the parameter bag). @p warm_start is the
 * segment's planned warm-up record (part of the content fingerprint: a
 * replanned warm-up must miss rather than replay a stale delta). */
Workload segmentWorkload(const Workload &workload, int segments,
                         std::uint64_t warmup_uops, int segment,
                         std::size_t warm_start = 0);

/**
 * Resolve the segment count for one workload: explicit requests pass
 * through, `auto` (0) derives K from the benchmark's uop-count
 * estimate so one segment covers about @p target_uops, clamped to
 * [1, @p max_parallel]. Deterministic across runs — it depends only
 * on the workload's content, never on measured times.
 */
int resolveSegments(int requested, double estimated_uops,
                    std::uint64_t target_uops, int max_parallel);

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_SEGMENT_H
