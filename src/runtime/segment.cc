#include "runtime/segment.h"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.h"
#include "support/check.h"
#include "support/timing.h"
#include "topdown/machine.h"

namespace alberta::runtime {

namespace {

// Record and replay phases are timed in thread CPU seconds (see
// support/timing.h): their seconds feed the critical-path metric
// (record + longest replay), which must stay meaningful when
// concurrent replays oversubscribe the cores.
using support::threadCpuSeconds;

/** Issue width of the default machine the runtime paths construct. */
int
defaultIssueWidth()
{
    static const int width = topdown::MachineConfig{}.issueWidth;
    return width;
}

const std::string kUnknownMethod = "<unknown>";

/** Coverage fractions from per-method total slots, mirroring
 * CoverageProfiler::coverage (same accumulation order, same skip
 * rules) so exact-mode results are bit-identical to a direct run. */
stats::CoverageMap
coverageFromTotals(std::span<const double> method_totals,
                   std::span<const std::string> names)
{
    double total = 0.0;
    for (const double t : method_totals)
        total += t;
    stats::CoverageMap out;
    if (total <= 0.0)
        return out;
    for (std::size_t id = 0; id < method_totals.size(); ++id) {
        const double t = method_totals[id];
        if (t <= 0.0)
            continue;
        const std::string &name =
            id < names.size() ? names[id] : kUnknownMethod;
        out[name] += t / total;
    }
    return out;
}

} // namespace

SegmentPlan
recordSegments(const Benchmark &benchmark, const Workload &workload,
               int segments, std::uint64_t warmup_uops)
{
    support::fatalIf(segments < 1,
                     "segment: need at least one segment");
    SegmentPlan plan;
    plan.segments = segments;
    plan.warmupUops = warmup_uops;

    auto trace = std::make_shared<topdown::UopTrace>();
    // Records never outnumber retired uops (bulk records cover many),
    // so the workload's uop estimate upper-bounds the lane size;
    // reserving it up front spares the capture pass from copying
    // gigabytes of lane data through capacity doublings. The clamp
    // guards against a wild hint.
    const double hint = benchmark.costHint(workload);
    if (hint > 0.0)
        trace->reserve(
            static_cast<std::size_t>(std::min(hint, 1e9)));
    ExecutionContext context;
    context.machine().captureTo(trace.get());
    const double cpu0 = threadCpuSeconds();
    benchmark.run(workload, context);
    context.machine().captureTo(nullptr);

    plan.checksum = context.checksum();
    plan.retiredOps = context.retiredOps();
    const profile::MethodRegistry &registry = context.registry();
    plan.methodNames.reserve(registry.size());
    for (std::uint32_t id = 0; id < registry.size(); ++id)
        plan.methodNames.push_back(registry.name(id));

    plan.cuts = trace->cutPoints(segments);
    plan.warmStarts = trace->planWarmStarts(plan.cuts, warmup_uops);
    // Planning is part of the serial prefix every replay waits on, so
    // it is charged to the record pass.
    plan.recordSeconds = threadCpuSeconds() - cpu0;
    plan.trace = std::move(trace);
    return plan;
}

SegmentDelta
replaySegment(const SegmentPlan &plan, int segment)
{
    support::panicIf(segment < 0 || segment >= plan.segments,
                     "segment: index out of range");
    const topdown::UopTrace &trace = *plan.trace;
    const std::size_t start = plan.cuts[segment];
    const std::size_t end = plan.cuts[segment + 1];

    const double cpu0 = threadCpuSeconds();
    topdown::Machine machine;
    if (segment > 0) {
        // Re-establish the method context active at the warm-up start
        // (attribution inside the warm-up window is discarded with the
        // baseline, but the code footprint and fetch cursor matter),
        // then replay the planner's warm-up window to approximate the
        // predictor and cache state the segment would have inherited
        // (reuse-aware: see UopTrace::planWarmStarts).
        const std::size_t warm = plan.warmStarts[segment];
        const std::size_t methodRecord = trace.lastMethodAt(warm);
        if (methodRecord != trace.records())
            trace.replay(machine, methodRecord, methodRecord + 1);
        trace.replayBatched(machine, warm, start);
    }
    const topdown::MachineSnapshot baseline = machine.snapshot();
    trace.replayBatched(machine, start, end);

    SegmentDelta delta;
    delta.slots = machine.totals();
    delta.slots -= baseline.total;
    const auto &perMethod = machine.perMethod();
    delta.methodTotals.resize(perMethod.size(), 0.0);
    for (std::size_t id = 0; id < perMethod.size(); ++id) {
        double base = 0.0;
        if (id < baseline.methods.size())
            base = baseline.methods[id].total();
        delta.methodTotals[id] = perMethod[id].total() - base;
    }
    delta.retired = machine.retiredOps() - baseline.retired;
    delta.seconds = threadCpuSeconds() - cpu0;
    return delta;
}

RunMeasurement
spliceSegments(const SegmentPlan &plan,
               std::span<const SegmentDelta> deltas)
{
    support::panicIf(static_cast<int>(deltas.size()) != plan.segments,
                     "segment: splice needs one delta per segment");
    topdown::SlotCounts slots;
    std::vector<double> methodTotals(plan.methodNames.size(), 0.0);
    std::uint64_t retired = 0;
    double longestReplay = 0.0;
    for (const SegmentDelta &d : deltas) {
        slots += d.slots;
        retired += d.retired;
        longestReplay = std::max(longestReplay, d.seconds);
        if (d.methodTotals.size() > methodTotals.size())
            methodTotals.resize(d.methodTotals.size(), 0.0);
        for (std::size_t id = 0; id < d.methodTotals.size(); ++id)
            methodTotals[id] += d.methodTotals[id];
    }
    support::panicIf(retired != plan.retiredOps,
                     "segment: spliced segments retired ", retired,
                     " uops, record pass retired ", plan.retiredOps,
                     " (overlapping or missing segment)");

    RunMeasurement out;
    out.seconds = plan.recordSeconds + longestReplay;
    out.simCycles = slots.total() / defaultIssueWidth();
    out.retiredOps = retired;
    out.checksum = plan.checksum;
    const double total = slots.total();
    if (total > 0.0) {
        out.topdown.frontend = slots.frontend / total;
        out.topdown.backend = slots.backend / total;
        out.topdown.badspec = slots.badspec / total;
        out.topdown.retiring = slots.retiring / total;
    }
    out.coverage = coverageFromTotals(methodTotals, plan.methodNames);
    return out;
}

RunMeasurement
replaySegmentsExact(const SegmentPlan &plan)
{
    const topdown::UopTrace &trace = *plan.trace;
    auto machine = std::make_unique<topdown::Machine>();
    double seconds = 0.0;
    for (int s = 0; s < plan.segments; ++s) {
        if (s > 0) {
            // Hand the architectural state across the cut exactly:
            // the next segment's machine adopts its predecessor's
            // predictor tables, cache arrays, and fetch cursor.
            const topdown::MachineSnapshot snap = machine->snapshot();
            machine = std::make_unique<topdown::Machine>();
            machine->restore(snap);
        }
        const double cpu0 = threadCpuSeconds();
        trace.replayBatched(*machine, plan.cuts[s], plan.cuts[s + 1]);
        seconds += threadCpuSeconds() - cpu0;
    }

    RunMeasurement out;
    out.seconds = seconds;
    out.simCycles = machine->cycles();
    out.retiredOps = machine->retiredOps();
    out.checksum = plan.checksum;
    out.topdown = machine->ratios();
    const auto &perMethod = machine->perMethod();
    std::vector<double> methodTotals;
    methodTotals.reserve(perMethod.size());
    for (const topdown::SlotCounts &m : perMethod)
        methodTotals.push_back(m.total());
    out.coverage = coverageFromTotals(methodTotals, plan.methodNames);
    return out;
}

Workload
splicedWorkload(const Workload &workload, int segments,
                std::uint64_t warmup_uops)
{
    Workload out = workload;
    out.name += "#spliced-k" + std::to_string(segments) + "-w" +
                std::to_string(warmup_uops);
    out.params.set("__segments", static_cast<long long>(segments));
    out.params.set("__warmup_uops",
                   static_cast<long long>(warmup_uops));
    return out;
}

Workload
segmentWorkload(const Workload &workload, int segments,
                std::uint64_t warmup_uops, int segment,
                std::size_t warm_start)
{
    Workload out = workload;
    out.name += "#seg" + std::to_string(segment) + "of" +
                std::to_string(segments) + "-w" +
                std::to_string(warmup_uops);
    out.params.set("__segments", static_cast<long long>(segments));
    out.params.set("__segment", static_cast<long long>(segment));
    out.params.set("__warmup_uops",
                   static_cast<long long>(warmup_uops));
    out.params.set("__warm_start",
                   static_cast<long long>(warm_start));
    return out;
}

namespace {

/** Pack a segment delta into the cache's RunMeasurement payload: the
 * topdown fields carry the four raw slot deltas (not fractions) and
 * the coverage map carries raw per-method total-slot deltas keyed by
 * method name. Decoding restores the vector through the plan's
 * method-name table. */
CachedRun
encodeDelta(const SegmentPlan &plan, const SegmentDelta &delta)
{
    CachedRun run;
    run.measurement.seconds = delta.seconds;
    run.measurement.simCycles =
        delta.slots.total() / defaultIssueWidth();
    run.measurement.retiredOps = delta.retired;
    run.measurement.checksum = plan.checksum;
    run.measurement.topdown.frontend = delta.slots.frontend;
    run.measurement.topdown.backend = delta.slots.backend;
    run.measurement.topdown.badspec = delta.slots.badspec;
    run.measurement.topdown.retiring = delta.slots.retiring;
    for (std::size_t id = 0; id < delta.methodTotals.size(); ++id) {
        if (delta.methodTotals[id] <= 0.0)
            continue;
        const std::string &name = id < plan.methodNames.size()
                                      ? plan.methodNames[id]
                                      : kUnknownMethod;
        run.measurement.coverage[name] += delta.methodTotals[id];
    }
    return run;
}

bool
decodeDelta(const SegmentPlan &plan, const CachedRun &run,
            SegmentDelta *out)
{
    if (run.measurement.checksum != plan.checksum)
        return false; // stale: recorded against different content
    SegmentDelta delta;
    delta.slots.frontend = run.measurement.topdown.frontend;
    delta.slots.backend = run.measurement.topdown.backend;
    delta.slots.badspec = run.measurement.topdown.badspec;
    delta.slots.retiring = run.measurement.topdown.retiring;
    delta.retired = run.measurement.retiredOps;
    delta.seconds = run.measurement.seconds;
    delta.methodTotals.assign(plan.methodNames.size(), 0.0);
    std::unordered_map<std::string, std::size_t> ids;
    ids.reserve(plan.methodNames.size());
    for (std::size_t id = 0; id < plan.methodNames.size(); ++id)
        ids.emplace(plan.methodNames[id], id);
    for (const auto &[name, total] : run.measurement.coverage) {
        const auto it = ids.find(name);
        if (it == ids.end())
            return false; // method set changed: recompute
        delta.methodTotals[it->second] = total;
    }
    *out = delta;
    return true;
}

} // namespace

SegmentDelta
measureSegment(const SegmentPlan &plan, int segment,
               const Benchmark &benchmark, const Workload &workload,
               ResultCache *cache)
{
    if (!cache)
        return replaySegment(plan, segment);
    const Workload key =
        segmentWorkload(workload, plan.segments, plan.warmupUops,
                        segment, plan.warmStarts[segment]);
    CachedRun cached;
    SegmentDelta delta;
    if (cache->lookup(benchmark, key, &cached) &&
        decodeDelta(plan, cached, &delta))
        return delta;
    delta = replaySegment(plan, segment);
    cache->insert(benchmark, key, encodeDelta(plan, delta));
    return delta;
}

RunMeasurement
runSegmented(const Benchmark &benchmark, const Workload &workload,
             const SegmentOptions &options)
{
    support::fatalIf(options.segments < 1,
                     "segment: need at least one segment");
    const Workload spliceKey = splicedWorkload(
        workload, options.segments, options.warmupUops);
    if (options.cache) {
        CachedRun cached;
        if (options.cache->lookup(benchmark, spliceKey, &cached))
            return cached.measurement;
    }

    const SegmentPlan plan = recordSegments(
        benchmark, workload, options.segments, options.warmupUops);
    if (options.metrics) {
        options.metrics->counter("segment.record_uops")
            .add(plan.retiredOps);
        options.metrics->histogram("segment.record_seconds")
            .record(plan.recordSeconds);
    }
    std::vector<SegmentDelta> deltas(plan.segments);
    const auto runOne = [&](std::size_t s) {
        deltas[s] =
            measureSegment(plan, static_cast<int>(s), benchmark,
                           workload, options.cache);
    };
    if (options.executor && plan.segments > 1) {
        options.executor->parallelFor(
            static_cast<std::size_t>(plan.segments), runOne);
    } else {
        for (int s = 0; s < plan.segments; ++s)
            runOne(static_cast<std::size_t>(s));
    }

    if (options.metrics) {
        std::uint64_t replayed = 0;
        double replaySeconds = 0.0;
        for (const SegmentDelta &d : deltas) {
            replayed += d.retired;
            replaySeconds += d.seconds;
        }
        options.metrics->counter("segment.replay_uops").add(replayed);
        options.metrics->histogram("segment.replay_seconds")
            .record(replaySeconds);
    }
    const RunMeasurement out = spliceSegments(plan, deltas);
    if (options.cache)
        options.cache->insert(benchmark, spliceKey, {out, {}});
    return out;
}

RunMeasurement
runBatchedExact(const Benchmark &benchmark, const Workload &workload)
{
    // The record pass (segments=1 keeps planning trivial) yields the
    // checksum, method names, and the trace; the whole trace then
    // replays through the batched kernel on a fresh machine, which is
    // bit-identical to a direct run by construction.
    const SegmentPlan plan = recordSegments(benchmark, workload, 1);
    const double cpu0 = threadCpuSeconds();
    topdown::Machine machine;
    plan.trace->replayAllBatched(machine);

    RunMeasurement out;
    out.seconds = plan.recordSeconds + (threadCpuSeconds() - cpu0);
    out.simCycles = machine.cycles();
    out.retiredOps = machine.retiredOps();
    out.checksum = plan.checksum;
    out.topdown = machine.ratios();
    const auto &perMethod = machine.perMethod();
    std::vector<double> methodTotals;
    methodTotals.reserve(perMethod.size());
    for (const topdown::SlotCounts &m : perMethod)
        methodTotals.push_back(m.total());
    out.coverage = coverageFromTotals(methodTotals, plan.methodNames);
    return out;
}

RunMeasurement
measureBatchedExact(const Benchmark &benchmark,
                    const Workload &workload, ResultCache *cache)
{
    if (!cache)
        return runBatchedExact(benchmark, workload);
    CachedRun cached;
    if (cache->lookup(benchmark, workload, &cached))
        return cached.measurement;
    cached.measurement = runBatchedExact(benchmark, workload);
    cache->insert(benchmark, workload, cached);
    return cached.measurement;
}

int
resolveSegments(int requested, double estimated_uops,
                std::uint64_t target_uops, int max_parallel)
{
    if (requested >= 1)
        return requested;
    if (estimated_uops <= 0.0 || max_parallel <= 1 ||
        target_uops == 0)
        return 1;
    const double k = estimated_uops / static_cast<double>(target_uops);
    if (k < 2.0)
        return 1; // not worth a record pass for one short replay
    return std::min(max_parallel, static_cast<int>(k));
}

} // namespace alberta::runtime
