#include "runtime/executor.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/obs.h"

namespace alberta::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** True on threads owned by some executor (guards nested parallelFor). */
thread_local bool tlsInsideWorker = false;

/** Shared completion state of one parallelFor call. */
struct Batch
{
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;

    void
    finishOne(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (e && !error)
            error = std::move(e);
        if (--remaining == 0)
            done.notify_all();
    }
};

} // namespace

struct Executor::Task
{
    std::shared_ptr<Batch> batch;
    std::function<void(std::size_t)> const *body = nullptr;
    std::size_t index = 0;
    Clock::time_point submitted;
};

Executor::Executor(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
    if (jobs_ <= 1)
        return;
    workers_.reserve(jobs_);
    for (int i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

int
Executor::defaultJobs()
{
    if (const char *env = std::getenv("ALBERTA_JOBS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
Executor::runTask(Task &task)
{
    const double waited = secondsSince(task.submitted);
    const auto start = Clock::now();
    std::exception_ptr error;
    try {
        (*task.body)(task.index);
    } catch (...) {
        error = std::current_exception();
    }
    const double ran = secondsSince(start);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.tasksRun;
        stats_.queueSeconds += waited;
        stats_.runSeconds += ran;
    }
    task.batch->finishOne(std::move(error));
}

void
Executor::workerLoop()
{
    tlsInsideWorker = true;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        runTask(task);
    }
}

void
Executor::attachObservability(obs::Tracer *tracer,
                              obs::Registry *metrics)
{
    tracer_ = tracer;
    batchCounter_ =
        metrics ? &metrics->counter("executor.batches") : nullptr;
    taskCounter_ =
        metrics ? &metrics->counter("executor.tasks") : nullptr;
}

void
Executor::parallelFor(std::size_t count,
                      const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    obs::Span span(tracer_, "parallel_for", "executor");
    span.note("tasks", static_cast<std::uint64_t>(count));
    if (batchCounter_) {
        batchCounter_->add(1);
        taskCounter_->add(count);
    }

    // Serial executors and nested calls from worker threads run inline;
    // timings are still accounted so stats stay comparable.
    if (jobs_ <= 1 || tlsInsideWorker || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            const auto start = Clock::now();
            body(i);
            const double ran = secondsSince(start);
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.tasksRun;
            stats_.runSeconds += ran;
        }
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->remaining = count;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < count; ++i) {
            Task task;
            task.batch = batch;
            task.body = &body;
            task.index = i;
            task.submitted = Clock::now();
            queue_.push(std::move(task));
        }
    }
    wake_.notify_all();

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

ExecutorStats
Executor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace alberta::runtime
