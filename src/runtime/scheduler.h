/**
 * @file
 * Suite-level run scheduler: one flattened task list across every
 * (benchmark, workload) pair, dispatched as a single Executor batch in
 * longest-expected-first order.
 *
 * The per-benchmark `parallelFor` in `core::characterize` leaves the
 * pool idle at two points: the barrier at the end of each benchmark's
 * small batch, and the serialized refrate repetitions between batches.
 * The scheduler removes both by collecting *all* model runs — refrate
 * repetitions included — into one global batch. Task order within the
 * batch comes from a CostLedger of previously measured run times,
 * longest first, so the slowest tasks start earliest and the batch
 * tail is short; tasks the ledger cannot estimate keep submission
 * order (stable sort). Callers gather results into pre-sized slots,
 * so model outputs are bit-identical to serial execution regardless
 * of the dispatch order.
 */
#ifndef ALBERTA_RUNTIME_SCHEDULER_H
#define ALBERTA_RUNTIME_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runtime/cost_ledger.h"
#include "runtime/executor.h"

namespace alberta::runtime {

/** One schedulable unit of suite work. */
struct SuiteTask
{
    /** Ledger key (and span name), e.g. "505.mcf_r/refrate". */
    std::string costKey;
    /** Span category, e.g. "model_run" or "refrate_rep". */
    std::string category = "model_run";
    /** The work; the span is this task's (inactive when untraced). */
    std::function<void(obs::Span &span)> run;
};

/** What one scheduled batch did. */
struct SchedulerStats
{
    std::uint64_t dispatched = 0; //!< tasks handed to the executor
    /**
     * Tasks the ledger promoted ahead of their submission position —
     * long tasks that would otherwise have been picked up late and
     * left the pool draining behind one straggler.
     */
    std::uint64_t stealsAvoided = 0;
    double batchSeconds = 0.0; //!< wall time of the whole batch
};

/**
 * Longest-expected-first dispatcher over a shared Executor.
 *
 * Measured run times are recorded back into the ledger (and the
 * ledger saved) after every batch, so estimates improve run over run
 * and persist across processes when the ledger has a path.
 */
class Scheduler
{
  public:
    explicit Scheduler(Executor *executor,
                       CostLedger *ledger = nullptr,
                       obs::Tracer *tracer = nullptr,
                       obs::Registry *metrics = nullptr);

    /**
     * Dispatch @p tasks as one batch and block until all complete.
     * Bumps the `scheduler.dispatched` / `scheduler.steals_avoided`
     * counters when a metrics registry is attached.
     */
    SchedulerStats run(std::vector<SuiteTask> tasks);

  private:
    Executor *executor_;
    CostLedger *ledger_;
    obs::Tracer *tracer_;
    obs::Counter *dispatchCounter_ = nullptr;
    obs::Counter *stealCounter_ = nullptr;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_SCHEDULER_H
