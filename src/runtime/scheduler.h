/**
 * @file
 * Suite-level run scheduler: one flattened task list across every
 * (benchmark, workload) pair, dispatched as a single Executor batch in
 * longest-expected-first order.
 *
 * The per-benchmark `parallelFor` in `core::characterize` leaves the
 * pool idle at two points: the barrier at the end of each benchmark's
 * small batch, and the serialized refrate repetitions between batches.
 * The scheduler removes both by collecting *all* model runs — refrate
 * repetitions included — into one global batch. Task order within the
 * batch comes from a CostLedger of previously measured run times,
 * longest first, so the slowest tasks start earliest and the batch
 * tail is short; tasks the ledger cannot estimate keep submission
 * order (stable sort). Callers gather results into pre-sized slots,
 * so model outputs are bit-identical to serial execution regardless
 * of the dispatch order.
 */
#ifndef ALBERTA_RUNTIME_SCHEDULER_H
#define ALBERTA_RUNTIME_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runtime/cost_ledger.h"
#include "runtime/executor.h"

namespace alberta::runtime {

/** One schedulable unit of suite work. */
struct SuiteTask
{
    /** Ledger key (and span name), e.g. "505.mcf_r/refrate". */
    std::string costKey;
    /** Span category, e.g. "model_run" or "refrate_rep". */
    std::string category = "model_run";
    /** The work; the span is this task's (inactive when untraced).
     * Exactly one of `run` and `expand` must be set. */
    std::function<void(obs::Span &span)> run;
    /**
     * Expanding alternative to `run`: do some work (typically record a
     * segment plan), then return follow-up tasks the scheduler
     * dispatches in the next wave, re-sorted longest-first together
     * with every other follow-up of the current wave. This is how one
     * long workload becomes several concurrent segment replays without
     * the scheduler knowing anything about segments.
     */
    std::function<std::vector<SuiteTask>(obs::Span &span)> expand;
    /**
     * Abstract cost units (estimated retired uops, from
     * Benchmark::costHint) used to order the task when the ledger has
     * no measured seconds for its key. Converted to seconds through
     * the ledger's persisted calibration rate; 0.0 means unknown.
     */
    double costHint = 0.0;
};

/** What one scheduled batch did. */
struct SchedulerStats
{
    std::uint64_t dispatched = 0; //!< tasks handed to the executor
    /**
     * Tasks the ledger promoted ahead of their submission position —
     * long tasks that would otherwise have been picked up late and
     * left the pool draining behind one straggler.
     */
    std::uint64_t stealsAvoided = 0;
    std::uint64_t waves = 0;    //!< dispatch waves (1 = no expansion)
    std::uint64_t expanded = 0; //!< tasks that produced follow-ups
    double batchSeconds = 0.0;  //!< wall time of the whole batch
};

/**
 * Longest-expected-first dispatcher over a shared Executor.
 *
 * Measured run times are recorded back into the ledger (and the
 * ledger saved) after every batch, so estimates improve run over run
 * and persist across processes when the ledger has a path. A task's
 * expected cost is its ledger seconds when measured before, else its
 * `costHint` converted through the ledger's calibrated seconds-per-
 * unit rate — so a completely cold ledger still dispatches the big
 * refrate runs first instead of wherever submission order put them.
 *
 * Tasks may expand: an `expand` callback returns follow-up tasks that
 * form the next dispatch wave, re-sorted longest-first among
 * themselves. Waves repeat until no task expands.
 */
class Scheduler
{
  public:
    explicit Scheduler(Executor *executor,
                       CostLedger *ledger = nullptr,
                       obs::Tracer *tracer = nullptr,
                       obs::Registry *metrics = nullptr);

    /**
     * Dispatch @p tasks as one batch (possibly several expansion
     * waves) and block until all complete. Bumps the
     * `scheduler.dispatched` / `scheduler.steals_avoided` /
     * `scheduler.waves` counters when a metrics registry is attached.
     */
    SchedulerStats run(std::vector<SuiteTask> tasks);

  private:
    Executor *executor_;
    CostLedger *ledger_;
    obs::Tracer *tracer_;
    obs::Counter *dispatchCounter_ = nullptr;
    obs::Counter *stealCounter_ = nullptr;
    obs::Counter *waveCounter_ = nullptr;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_SCHEDULER_H
