/**
 * @file
 * The run-session facade: one object owning everything a
 * characterization session shares — the worker pool, the result cache,
 * the accumulated executor statistics, and the observability layer
 * (metrics registry + tracer). `core::characterize` and
 * `fdo::CrossValidateOptions` take a single `Engine*` instead of the
 * historical executor/cache/stats raw-pointer triple.
 *
 * Construction is builder-style because the pool size and the trace
 * sink must be fixed before the members come up:
 *
 * @code
 *   runtime::Engine engine = runtime::Engine::Builder()
 *                                .jobs(8)
 *                                .traceFile("run.jsonl")
 *                                .build();
 *   core::RunRequest request;
 *   core::execute(request, engine);
 * @endcode
 *
 * An Engine without a trace sink runs the null sink: every span entry
 * point collapses to a single branch, and model outputs are
 * bit-identical with tracing on or off.
 */
#ifndef ALBERTA_RUNTIME_ENGINE_H
#define ALBERTA_RUNTIME_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runtime/cost_ledger.h"
#include "runtime/executor.h"
#include "runtime/persistent_cache.h"
#include "runtime/result_cache.h"

namespace alberta::runtime {

/** Shared execution + observability state for a run session. */
class Engine
{
  public:
    class Builder;

    /** Default session: auto-sized pool, no tracing. */
    Engine() : Engine(Config{}) {}

    /** Convenience: pool of @p jobs (see Executor), no tracing. */
    explicit Engine(int jobs) : Engine(makeConfig(jobs)) {}

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    Executor &executor() { return executor_; }
    ResultCache &cache() { return cache_; }
    /** Stats accumulated by every characterization run through this
     * engine. */
    ExecutorStats &stats() { return stats_; }
    obs::Registry &metrics() { return metrics_; }
    obs::Tracer &tracer() { return tracer_; }

    /** On-disk result store backing the cache (nullptr when the
     * engine was built without a cache directory). */
    PersistentCache *disk() { return disk_.get(); }
    /**
     * Expected-cost ledger for the suite scheduler: persisted in the
     * cache directory when one is set, in-memory otherwise (so warm
     * in-process reruns still schedule longest-first).
     */
    CostLedger &ledger() { return ledger_; }

    int jobs() const { return executor_.jobs(); }
    bool tracing() const { return tracer_.enabled(); }
    /** Trace file path ("" when tracing to a custom sink or off). */
    const std::string &tracePath() const { return tracePath_; }
    /** Cache directory ("" when the disk cache is disabled). */
    const std::string &cacheDir() const { return cacheDir_; }

    /** Flush the trace sink (no-op for the null sink). */
    void flushTrace();

    /**
     * The end-of-run metrics table: every registry metric plus the
     * executor/cache/session aggregates, sorted by name.
     */
    std::vector<obs::MetricSample> metricsSnapshot() const;

  private:
    struct Config
    {
        int jobs = 0;
        std::string tracePath;
        std::string cacheDir;
        std::unique_ptr<obs::TraceSink> sink;
    };

    explicit Engine(Config config);

    static Config
    makeConfig(int jobs)
    {
        Config c;
        c.jobs = jobs;
        return c;
    }

    std::unique_ptr<obs::TraceSink> sink_; //!< null = null sink
    std::string tracePath_;
    std::string cacheDir_;
    obs::Registry metrics_;
    obs::Tracer tracer_;
    Executor executor_;
    std::unique_ptr<PersistentCache> disk_; //!< null = memory only
    ResultCache cache_;
    CostLedger ledger_;
    ExecutorStats stats_;
};

/** Builder-style Engine configuration. */
class Engine::Builder
{
  public:
    /** Worker count (0 = Executor::defaultJobs). */
    Builder &
    jobs(int n)
    {
        config_.jobs = n;
        return *this;
    }

    /** Trace spans to @p path as JSON lines ("" = no tracing). */
    Builder &traceFile(const std::string &path);

    /** Trace spans to a custom sink (overrides traceFile). */
    Builder &traceSink(std::unique_ptr<obs::TraceSink> sink);

    /**
     * Back the result cache with the on-disk store at @p dir (created
     * if needed; "" disables persistence) and persist the scheduler's
     * cost ledger alongside it. `build()` raises support::FatalError
     * when the directory cannot be created.
     */
    Builder &
    cacheDir(const std::string &dir)
    {
        config_.cacheDir = dir;
        return *this;
    }

    /**
     * Resolve the session cache directory the way every binary does:
     * an explicit `--cache-dir` value wins, otherwise the
     * `ALBERTA_CACHE_DIR` environment variable, otherwise no
     * persistence. An explicitly given empty value is fatal — both
     * binaries emit the identical diagnostic — and an unusable
     * directory is fatal in `build()` (see cacheDir). @p flagGiven
     * distinguishes "--cache-dir ''" from the flag being absent.
     */
    Builder &cacheDirOption(const std::string &flagValue,
                            bool flagGiven);

    /** Construct the engine (relies on guaranteed copy elision:
     * Engine itself is neither copyable nor movable). */
    Engine
    build()
    {
        return Engine(std::move(config_));
    }

  private:
    Config config_;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_ENGINE_H
