#include "runtime/scheduler.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "support/check.h"

namespace alberta::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Seconds-per-cost-unit prior used before the ledger has recorded a
 * calibration (roughly 100M modelled uops per second). Only relative
 * order matters for dispatch, so the prior just needs hint-bearing
 * tasks to rank plausibly against the few keys with measured seconds.
 */
constexpr double kUncalibratedSecondsPerUnit = 1e-8;

/** Expansion waves are bounded by the task graph depth (a segmented
 * workload is record -> replays, depth 2); anything deeper is a bug. */
constexpr std::uint64_t kMaxWaves = 32;

} // namespace

Scheduler::Scheduler(Executor *executor, CostLedger *ledger,
                     obs::Tracer *tracer, obs::Registry *metrics)
    : executor_(executor), ledger_(ledger), tracer_(tracer)
{
    support::panicIf(!executor_, "scheduler: executor is required");
    if (metrics) {
        dispatchCounter_ = &metrics->counter("scheduler.dispatched");
        stealCounter_ = &metrics->counter("scheduler.steals_avoided");
        waveCounter_ = &metrics->counter("scheduler.waves");
    }
}

SchedulerStats
Scheduler::run(std::vector<SuiteTask> tasks)
{
    SchedulerStats stats;
    if (tasks.empty())
        return stats;

    obs::Span batch(tracer_, "suite_batch", "scheduler");
    const std::uint64_t batchId = batch.id();
    const auto start = Clock::now();

    double rate = ledger_ ? ledger_->secondsPerUnit() : 0.0;
    if (rate <= 0.0)
        rate = kUncalibratedSecondsPerUnit;
    double calibrationSeconds = 0.0;
    double calibrationUnits = 0.0;

    while (!tasks.empty()) {
        ++stats.waves;
        support::panicIf(stats.waves > kMaxWaves,
                         "scheduler: runaway task expansion");

        // Longest-expected-first order. Measured ledger seconds win;
        // keys never timed fall back to their cost hint converted
        // through the calibration rate. The sort is stable, so tasks
        // with neither (expected 0.0) keep submission order and a
        // fully cold hint-less run degrades to the natural sequence.
        std::vector<double> expected(tasks.size(), 0.0);
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            const double known =
                ledger_ ? ledger_->expectedSeconds(tasks[i].costKey)
                        : 0.0;
            expected[i] =
                known > 0.0 ? known : tasks[i].costHint * rate;
        }
        std::vector<std::size_t> order(tasks.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return expected[a] > expected[b];
                         });
        for (std::size_t pos = 0; pos < order.size(); ++pos) {
            if (order[pos] > pos)
                ++stats.stealsAvoided;
        }
        stats.dispatched += tasks.size();

        std::vector<std::vector<SuiteTask>> followUps(tasks.size());
        std::vector<double> taskSeconds(tasks.size(), 0.0);
        executor_->parallelFor(tasks.size(), [&](std::size_t i) {
            SuiteTask &task = tasks[order[i]];
            support::panicIf(!task.run && !task.expand,
                             "scheduler: task has no work: " +
                                 task.costKey);
            obs::Span span(tracer_, task.costKey, task.category,
                           batchId);
            const auto taskStart = Clock::now();
            if (task.expand)
                followUps[order[i]] = task.expand(span);
            else
                task.run(span);
            taskSeconds[order[i]] = secondsSince(taskStart);
        });

        std::vector<SuiteTask> next;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (ledger_)
                ledger_->record(tasks[i].costKey, taskSeconds[i]);
            if (tasks[i].costHint > 0.0) {
                calibrationSeconds += taskSeconds[i];
                calibrationUnits += tasks[i].costHint;
            }
            if (!followUps[i].empty()) {
                ++stats.expanded;
                next.insert(next.end(),
                            std::make_move_iterator(followUps[i].begin()),
                            std::make_move_iterator(followUps[i].end()));
            }
        }
        tasks = std::move(next);
    }

    if (dispatchCounter_) {
        dispatchCounter_->add(stats.dispatched);
        stealCounter_->add(stats.stealsAvoided);
        waveCounter_->add(stats.waves);
    }
    stats.batchSeconds = secondsSince(start);
    batch.note("tasks", stats.dispatched);
    batch.note("reordered", stats.stealsAvoided);
    batch.note("waves", stats.waves);
    batch.note("seconds", stats.batchSeconds);

    if (ledger_) {
        ledger_->recordCalibration(calibrationSeconds,
                                   calibrationUnits);
        ledger_->save();
    }
    return stats;
}

} // namespace alberta::runtime
