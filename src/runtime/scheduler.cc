#include "runtime/scheduler.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "support/check.h"

namespace alberta::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

Scheduler::Scheduler(Executor *executor, CostLedger *ledger,
                     obs::Tracer *tracer, obs::Registry *metrics)
    : executor_(executor), ledger_(ledger), tracer_(tracer)
{
    support::panicIf(!executor_, "scheduler: executor is required");
    if (metrics) {
        dispatchCounter_ = &metrics->counter("scheduler.dispatched");
        stealCounter_ = &metrics->counter("scheduler.steals_avoided");
    }
}

SchedulerStats
Scheduler::run(std::vector<SuiteTask> tasks)
{
    SchedulerStats stats;
    if (tasks.empty())
        return stats;

    // Longest-expected-first order. The sort is stable, so tasks the
    // ledger cannot estimate (0.0 s) keep their submission order and
    // a cold first run degrades to the natural task sequence.
    std::vector<double> expected(tasks.size(), 0.0);
    if (ledger_) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            expected[i] = ledger_->expectedSeconds(tasks[i].costKey);
    }
    std::vector<std::size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return expected[a] > expected[b];
                     });
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (order[pos] > pos)
            ++stats.stealsAvoided;
    }
    stats.dispatched = tasks.size();
    if (dispatchCounter_) {
        dispatchCounter_->add(stats.dispatched);
        stealCounter_->add(stats.stealsAvoided);
    }

    obs::Span batch(tracer_, "suite_batch", "scheduler");
    batch.note("tasks", static_cast<std::uint64_t>(tasks.size()));
    batch.note("reordered", stats.stealsAvoided);
    const std::uint64_t batchId = batch.id();

    const auto start = Clock::now();
    executor_->parallelFor(tasks.size(), [&](std::size_t i) {
        SuiteTask &task = tasks[order[i]];
        obs::Span span(tracer_, task.costKey, task.category, batchId);
        const auto taskStart = Clock::now();
        task.run(span);
        if (ledger_)
            ledger_->record(task.costKey, secondsSince(taskStart));
    });
    stats.batchSeconds = secondsSince(start);
    batch.note("seconds", stats.batchSeconds);

    if (ledger_)
        ledger_->save();
    return stats;
}

} // namespace alberta::runtime
