/**
 * @file
 * The benchmark interface every mini-SPEC program implements, and the
 * runner that executes (benchmark, workload) pairs and collects the
 * paper's three measurement types: execution time, top-down fractions,
 * and method coverage.
 */
#ifndef ALBERTA_RUNTIME_BENCHMARK_H
#define ALBERTA_RUNTIME_BENCHMARK_H

#include <memory>
#include <string>
#include <vector>

#include "runtime/context.h"
#include "runtime/workload.h"

namespace alberta::runtime {

/**
 * A benchmark program (in the paper's footnote-2 sense: the program,
 * not yet combined with a workload).
 */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** SPEC-style identifier, e.g. "505.mcf_r". */
    virtual std::string name() const = 0;

    /** Application area, e.g. "Route planning". */
    virtual std::string area() const = 0;

    /**
     * The benchmark's workload set: "refrate" and "train" (the SPEC-
     * distributed pair) followed by the Alberta workloads. Workloads are
     * fully determined by their seeds and parameters.
     */
    virtual std::vector<Workload> workloads() const = 0;

    /**
     * Execute one workload, reporting micro-ops through @p context and
     * folding observable outputs into its checksum.
     *
     * @throws support::FatalError on malformed workloads
     */
    virtual void run(const Workload &workload,
                     ExecutionContext &context) const = 0;

    /**
     * Rough retired-uop estimate for @p workload, derived from its
     * parameters without running anything. Two consumers: the suite
     * scheduler orders cold runs longest-first before any measured
     * time exists (the CostLedger converts hints to seconds through
     * its persisted calibration rate), and the segment planner sizes
     * auto segment counts (see runtime::resolveSegments). Estimates
     * need ranking power, not accuracy — being within a small factor
     * is plenty. 0.0 means unknown (sorts as cheapest).
     */
    virtual double
    costHint(const Workload &workload) const
    {
        (void)workload;
        return 0.0;
    }
};

/** Measurements from a single execution of one (benchmark, workload). */
struct RunMeasurement
{
    double seconds = 0.0;             //!< wall-clock execution time
    double simCycles = 0.0;           //!< modelled core cycles
    std::uint64_t retiredOps = 0;     //!< micro-ops retired
    std::uint64_t checksum = 0;       //!< output checksum
    stats::TopdownRatios topdown;     //!< the four slot fractions
    stats::CoverageMap coverage;      //!< method -> time fraction
};

/** Aggregate of repeated executions of one (benchmark, workload). */
struct WorkloadMeasurement
{
    std::string workload;             //!< workload name
    double meanSeconds = 0.0;         //!< arithmetic mean over runs
    std::vector<double> runSeconds;   //!< raw per-run times
    RunMeasurement representative;    //!< deterministic model outputs
};

/** Execute @p workload once under a fresh context. */
RunMeasurement runOnce(const Benchmark &benchmark,
                       const Workload &workload);

/**
 * Execute @p workload @p repetitions times (the paper uses three) and
 * aggregate. Model-derived outputs (top-down, coverage, checksum) are
 * identical across repetitions by construction; this is verified.
 */
WorkloadMeasurement runRepeated(const Benchmark &benchmark,
                                const Workload &workload,
                                int repetitions = 3);

/** Find a workload by name (fatal if absent). */
Workload findWorkload(const Benchmark &benchmark, std::string_view name);

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_BENCHMARK_H
