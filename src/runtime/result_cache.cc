#include "runtime/result_cache.h"

#include "obs/obs.h"
#include "runtime/persistent_cache.h"
#include "support/timing.h"

namespace alberta::runtime {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
hashBytes(std::uint64_t &h, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
}

/** Length-prefixed string hashing so field boundaries stay unambiguous. */
void
hashString(std::uint64_t &h, const std::string &s)
{
    const std::uint64_t size = s.size();
    hashBytes(h, &size, sizeof(size));
    hashBytes(h, s.data(), s.size());
}

} // namespace

std::uint64_t
ResultCache::fingerprint(const Benchmark &benchmark,
                         const Workload &workload)
{
    std::uint64_t h = kFnvOffset;
    hashString(h, benchmark.name());
    hashString(h, workload.name);
    hashBytes(h, &workload.seed, sizeof(workload.seed));
    // Params and files are ordered maps, so iteration (and therefore
    // the fingerprint) is deterministic.
    for (const auto &[key, value] : workload.params.entries()) {
        hashString(h, key);
        hashString(h, value);
    }
    for (const auto &[name, content] : workload.files) {
        hashString(h, name);
        hashString(h, content);
    }
    return h;
}

std::string
ResultCache::key(const Benchmark &benchmark, const Workload &workload)
{
    return benchmark.name() + '/' + workload.name;
}

bool
ResultCache::lookup(const Benchmark &benchmark, const Workload &workload,
                    CachedRun *out) const
{
    const std::string k = key(benchmark, workload);
    const std::uint64_t fp = fingerprint(benchmark, workload);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(k);
        if (it != entries_.end() && it->second.fingerprint == fp) {
            if (out)
                *out = it->second.run;
            ++hits_;
            if (hitCounter_)
                hitCounter_->add(1);
            return true;
        }
    }
    // Fall through to the on-disk store; a disk hit is promoted into
    // the memory table so later probes stay in-process.
    CachedRun fromDisk;
    if (disk_ && disk_->load(benchmark, workload, &fromDisk)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            Entry &entry = entries_[k];
            entry.fingerprint = fp;
            entry.run = fromDisk;
        }
        if (out)
            *out = std::move(fromDisk);
        ++hits_;
        if (hitCounter_)
            hitCounter_->add(1);
        return true;
    }
    ++misses_;
    if (missCounter_)
        missCounter_->add(1);
    return false;
}

void
ResultCache::attachMetrics(obs::Registry *metrics)
{
    hitCounter_ = metrics ? &metrics->counter("cache.hits") : nullptr;
    missCounter_ =
        metrics ? &metrics->counter("cache.misses") : nullptr;
}

void
ResultCache::attachPersistent(const PersistentCache *disk)
{
    disk_ = disk;
}

void
ResultCache::insert(const Benchmark &benchmark, const Workload &workload,
                    CachedRun run)
{
    if (disk_)
        disk_->store(benchmark, workload, run);
    Entry entry;
    entry.fingerprint = fingerprint(benchmark, workload);
    entry.run = std::move(run);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key(benchmark, workload)] = std::move(entry);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

namespace {

/** runOnce with the run's cost restated in thread CPU seconds: an
 * untimed model run's `seconds` is a cost estimate (ledger ordering,
 * critical-path accounting), not an end-to-end latency, and CPU time
 * keeps it meaningful when pool workers oversubscribe the cores.
 * Timed refrate repetitions bypass this path — their wall time is
 * the paper's measurement. */
RunMeasurement
runOnceCpuCosted(const Benchmark &benchmark, const Workload &workload)
{
    const double cpu0 = support::threadCpuSeconds();
    RunMeasurement m = runOnce(benchmark, workload);
    m.seconds = support::threadCpuSeconds() - cpu0;
    return m;
}

} // namespace

RunMeasurement
measureCached(const Benchmark &benchmark, const Workload &workload,
              ResultCache *cache)
{
    if (!cache)
        return runOnceCpuCosted(benchmark, workload);
    CachedRun cached;
    if (cache->lookup(benchmark, workload, &cached))
        return cached.measurement;
    cached.measurement = runOnceCpuCosted(benchmark, workload);
    cache->insert(benchmark, workload, cached);
    return cached.measurement;
}

} // namespace alberta::runtime
