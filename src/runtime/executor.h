/**
 * @file
 * Fixed-size thread-pool executor for (benchmark, workload) model runs.
 *
 * The characterization pipeline is embarrassingly parallel: every model
 * run owns a fresh ExecutionContext, so tasks share no mutable state and
 * the executor only has to distribute indices and collect timings.
 * Results are always gathered in submission order, which keeps parallel
 * characterizations bit-identical to the serial path.
 */
#ifndef ALBERTA_RUNTIME_EXECUTOR_H
#define ALBERTA_RUNTIME_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace alberta::obs {
class Counter;
class Registry;
class Tracer;
} // namespace alberta::obs

namespace alberta::runtime {

/** Aggregate observability counters for executor + cache activity. */
struct ExecutorStats
{
    std::uint64_t tasksRun = 0;   //!< tasks executed (pool or inline)
    double queueSeconds = 0.0;    //!< total submit -> start wait
    double runSeconds = 0.0;      //!< total task execution time
    std::uint64_t cacheHits = 0;  //!< result-cache hits (per consumer)
    std::uint64_t cacheMisses = 0; //!< result-cache misses
    std::uint64_t uopsRetired = 0; //!< micro-ops retired by model runs

    /**
     * Model throughput in micro-ops per second of task execution time.
     * Cache hits replay memoized results, so a warm pass reports a much
     * higher apparent throughput than the raw machine speed.
     */
    double
    uopsPerSecond() const
    {
        return runSeconds > 0.0
                   ? static_cast<double>(uopsRetired) / runSeconds
                   : 0.0;
    }

    /** Accumulate another stats block into this one. */
    void
    merge(const ExecutorStats &other)
    {
        tasksRun += other.tasksRun;
        queueSeconds += other.queueSeconds;
        runSeconds += other.runSeconds;
        cacheHits += other.cacheHits;
        cacheMisses += other.cacheMisses;
        uopsRetired += other.uopsRetired;
    }
};

/**
 * A fixed-size worker pool with a blocking `parallelFor`.
 *
 * With `jobs == 1` no threads are created and bodies run inline on the
 * calling thread, so the serial path stays exactly the serial path.
 * Nested `parallelFor` calls from worker threads degrade to inline
 * execution instead of deadlocking.
 */
class Executor
{
  public:
    /**
     * @param jobs worker count; values <= 0 resolve to @ref defaultJobs.
     */
    explicit Executor(int jobs = 0);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Run `body(i)` for every `i` in `[0, count)` and block until all
     * complete. Bodies may run on any worker in any order; callers must
     * index into pre-sized result slots to keep gathering deterministic.
     * The first exception thrown by a body is rethrown here after the
     * batch drains.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** Snapshot of the counters accumulated so far. */
    ExecutorStats stats() const;

    /**
     * Attach observability (non-owning; pass nullptrs to detach).
     * When attached, every `parallelFor` batch opens one span
     * (category "executor") and bumps the `executor.batches` /
     * `executor.tasks` counters. Detached, the hooks cost one branch.
     */
    void attachObservability(obs::Tracer *tracer,
                             obs::Registry *metrics);

    /**
     * Default worker count: the `ALBERTA_JOBS` environment variable when
     * set to a positive integer, otherwise the hardware concurrency
     * (minimum 1).
     */
    static int defaultJobs();

  private:
    struct Task;

    void workerLoop();
    void runTask(Task &task);

    int jobs_ = 1;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::queue<Task> queue_;
    bool stopping_ = false;

    ExecutorStats stats_;

    obs::Tracer *tracer_ = nullptr;
    obs::Counter *batchCounter_ = nullptr;
    obs::Counter *taskCounter_ = nullptr;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_EXECUTOR_H
