#include "runtime/workload.h"

#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::runtime {

Params &
Params::set(std::string_view key, std::string_view value)
{
    entries_[std::string(key)] = std::string(value);
    return *this;
}

Params &
Params::set(std::string_view key, long long value)
{
    entries_[std::string(key)] = std::to_string(value);
    return *this;
}

Params &
Params::set(std::string_view key, double value)
{
    std::ostringstream os;
    os << value;
    entries_[std::string(key)] = os.str();
    return *this;
}

Params &
Params::set(std::string_view key, bool value)
{
    entries_[std::string(key)] = value ? "true" : "false";
    return *this;
}

std::string
Params::getString(std::string_view key, std::string_view fallback) const
{
    const auto it = entries_.find(std::string(key));
    return it == entries_.end() ? std::string(fallback) : it->second;
}

long long
Params::getInt(std::string_view key, long long fallback) const
{
    const auto it = entries_.find(std::string(key));
    return it == entries_.end() ? fallback : support::parseInt(it->second);
}

double
Params::getDouble(std::string_view key, double fallback) const
{
    const auto it = entries_.find(std::string(key));
    return it == entries_.end() ? fallback
                                : support::parseDouble(it->second);
}

bool
Params::getBool(std::string_view key, bool fallback) const
{
    const auto it = entries_.find(std::string(key));
    if (it == entries_.end())
        return fallback;
    return it->second == "true" || it->second == "1";
}

bool
Params::has(std::string_view key) const
{
    return entries_.count(std::string(key)) > 0;
}

const std::string &
Workload::file(std::string_view file) const
{
    const auto it = files.find(std::string(file));
    support::fatalIf(it == files.end(), "workload '", name,
                     "' has no artifact '", std::string(file), "'");
    return it->second;
}

} // namespace alberta::runtime
