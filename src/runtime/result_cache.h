/**
 * @file
 * Content-addressed cache of deterministic model runs.
 *
 * A workload is a pure function of its seed and parameters, and the
 * model outputs of a run (top-down fractions, coverage, checksum,
 * retired ops, simulated cycles) are pure functions of the (benchmark,
 * workload) pair. The cache keys on a fingerprint of that content so
 * repeated characterizations — Table II re-runs, the figure benches,
 * FDO cross-validation baselines — never recompute an identical model
 * run. Wall-clock seconds stored alongside are the times measured when
 * the entry was first computed.
 */
#ifndef ALBERTA_RUNTIME_RESULT_CACHE_H
#define ALBERTA_RUNTIME_RESULT_CACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/benchmark.h"

namespace alberta::obs {
class Counter;
class Registry;
} // namespace alberta::obs

namespace alberta::runtime {

class PersistentCache;

/** One memoized run: model outputs plus any recorded timing runs. */
struct CachedRun
{
    RunMeasurement measurement;      //!< deterministic model outputs
    /** Wall times of quiesced timed repetitions (refrate only). */
    std::vector<double> timedSeconds;
};

/**
 * Thread-safe memoization table for deterministic run measurements.
 *
 * Entries are addressed by benchmark name, workload name, and a 64-bit
 * FNV-1a fingerprint over the workload's full content (seed, parameter
 * bag, generated artifacts), so a workload edited in place — same name,
 * different content — misses instead of returning stale results.
 */
class ResultCache
{
  public:
    /** Fingerprint of the (benchmark, workload) content. */
    static std::uint64_t fingerprint(const Benchmark &benchmark,
                                     const Workload &workload);

    /** Look up a prior run; counts a hit or miss. */
    bool lookup(const Benchmark &benchmark, const Workload &workload,
                CachedRun *out) const;

    /** Insert (or overwrite) the entry for this run. */
    void insert(const Benchmark &benchmark, const Workload &workload,
                CachedRun run);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;

    /** Drop all entries and zero the counters. */
    void clear();

    /**
     * Mirror hit/miss activity into @p metrics as the `cache.hits` /
     * `cache.misses` counters (non-owning; nullptr detaches). Probe
     * results are unaffected — this is observation only.
     */
    void attachMetrics(obs::Registry *metrics);

    /**
     * Back this cache with an on-disk store (non-owning; nullptr
     * detaches). Lookups falling through the in-memory table probe
     * the store and promote disk hits into memory — a disk-backed hit
     * counts as a hit here and as a disk hit on @p disk — and every
     * insert writes through, so a later process starts warm.
     */
    void attachPersistent(const PersistentCache *disk);

  private:
    struct Entry
    {
        std::uint64_t fingerprint = 0;
        CachedRun run;
    };

    static std::string key(const Benchmark &benchmark,
                           const Workload &workload);

    mutable std::mutex mutex_;
    /** Mutable: lookup() promotes disk hits into the memory table. */
    mutable std::unordered_map<std::string, Entry> entries_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    obs::Counter *hitCounter_ = nullptr;
    obs::Counter *missCounter_ = nullptr;
    const PersistentCache *disk_ = nullptr;
};

/**
 * Run @p workload through the model, memoized in @p cache when one is
 * given (pass nullptr for a plain uncached @ref runOnce).
 */
RunMeasurement measureCached(const Benchmark &benchmark,
                             const Workload &workload,
                             ResultCache *cache);

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_RESULT_CACHE_H
