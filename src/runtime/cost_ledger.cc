#include "runtime/cost_ledger.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

namespace alberta::runtime {

namespace {

/** One line per entry: `<key>\t<seconds>`. */
constexpr char kSeparator = '\t';

} // namespace

CostLedger::CostLedger(std::string path) : path_(std::move(path))
{
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t sep = line.find(kSeparator);
        if (sep == std::string::npos || sep == 0)
            continue;
        char *end = nullptr;
        const double seconds =
            std::strtod(line.c_str() + sep + 1, &end);
        if (end == line.c_str() + sep + 1 || seconds < 0.0)
            continue; // malformed line: skip, keep the rest
        entries_[line.substr(0, sep)] = seconds;
    }
}

double
CostLedger::expectedSeconds(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    return it != entries_.end() ? it->second : 0.0;
}

void
CostLedger::record(const std::string &key, double seconds)
{
    if (!(seconds >= 0.0)) // drop negatives and NaNs
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.emplace(key, seconds);
    if (!inserted)
        it->second = 0.5 * it->second + 0.5 * seconds;
}

double
CostLedger::secondsPerUnit() const
{
    return expectedSeconds(kCalibrationKey);
}

void
CostLedger::recordCalibration(double totalSeconds, double totalUnits)
{
    if (!(totalUnits > 0.0) || !(totalSeconds >= 0.0))
        return;
    record(kCalibrationKey, totalSeconds / totalUnits);
}

void
CostLedger::save() const
{
    if (path_.empty())
        return;
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[key, seconds] : entries_)
            os << key << kSeparator << seconds << '\n';
    }
    const std::string tmp =
        path_ + ".tmp." +
        std::to_string(std::hash<std::thread::id>{}(
            std::this_thread::get_id()));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return;
        out << os.str();
        if (!out.good())
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

std::size_t
CostLedger::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace alberta::runtime
