/**
 * @file
 * Per-task expected-cost ledger for the suite scheduler.
 *
 * The scheduler orders the flattened (benchmark, workload) task list
 * longest-expected-first so the pool never ends a batch waiting on one
 * straggler. Expectations come from this ledger: a small key -> seconds
 * table seeded from previously measured task run times, persisted as a
 * text file alongside the persistent result cache so the estimates
 * survive the process. Unknown keys report 0.0, which a stable sort
 * keeps in submission order — the first cold run degrades gracefully
 * to the natural order.
 */
#ifndef ALBERTA_RUNTIME_COST_LEDGER_H
#define ALBERTA_RUNTIME_COST_LEDGER_H

#include <map>
#include <mutex>
#include <string>

namespace alberta::runtime {

/** Thread-safe expected-seconds table with optional persistence. */
class CostLedger
{
  public:
    /** In-memory ledger (no persistence). */
    CostLedger() = default;

    /** Ledger persisted at @p path; loads existing entries if the
     * file parses (a missing or malformed file is an empty ledger). */
    explicit CostLedger(std::string path);

    /** Expected seconds for @p key (0.0 when unknown). */
    double expectedSeconds(const std::string &key) const;

    /**
     * Fold a measured run time into the estimate. Known keys move by
     * an exponential moving average (alpha 0.5) so one noisy run does
     * not dominate; unknown keys adopt the measurement directly.
     */
    void record(const std::string &key, double seconds);

    /**
     * Measured seconds per abstract cost unit (retired uops in
     * practice), used to turn Benchmark::costHint estimates into
     * expected seconds for keys the ledger has never timed. 0.0
     * until the first calibration is recorded.
     */
    double secondsPerUnit() const;

    /**
     * Fold one batch's aggregate (wall seconds, cost-hint units) into
     * the seconds-per-unit rate. Persisted with the other entries
     * under a reserved key, so the very first task batch of a fresh
     * process on a warm ledger already orders cold workloads by hint.
     */
    void recordCalibration(double totalSeconds, double totalUnits);

    /** Reserved entry key holding the seconds-per-unit rate. */
    static constexpr const char *kCalibrationKey = "__seconds_per_unit__";

    /** Write the ledger to its path (tmp file + atomic rename;
     * no-op for in-memory ledgers, best effort on I/O errors). */
    void save() const;

    std::size_t size() const;
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    mutable std::mutex mutex_;
    std::map<std::string, double> entries_;
};

} // namespace alberta::runtime

#endif // ALBERTA_RUNTIME_COST_LEDGER_H
