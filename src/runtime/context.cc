#include "runtime/context.h"

namespace alberta::runtime {

ExecutionContext::ExecutionContext() : profiler_(machine_)
{
    profiler_.bindRegistry(registry_);
}

profile::MethodScope
ExecutionContext::method(std::string_view name, std::uint32_t code_bytes)
{
    const std::uint32_t id = registry_.intern(name, code_bytes);
    return profile::MethodScope(profiler_, id);
}

void
ExecutionContext::reset()
{
    machine_.reset();
    profiler_.reset();
    checksum_ = 0;
}

} // namespace alberta::runtime
