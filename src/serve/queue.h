/**
 * @file
 * The daemon's admission-controlled request queue.
 *
 * Run requests from every connected client land here; a single
 * dispatcher drains the queue through the shared runtime::Engine.
 * Two properties matter and both live in this class:
 *
 *  - **Admission control**: the queue is bounded. push() never
 *    blocks — when the queue is full (or draining) it returns false
 *    and the server answers the client with an error immediately,
 *    instead of letting a flood of suite requests build unbounded
 *    memory and latency.
 *
 *  - **Per-client FIFO fairness**: each client has its own lane and
 *    lanes are drained round-robin, so one client pipelining fifty
 *    requests cannot starve another's first. Within a lane, order is
 *    strictly the order push() accepted — a client's responses come
 *    back in the order it sent the requests.
 */
#ifndef ALBERTA_SERVE_QUEUE_H
#define ALBERTA_SERVE_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "core/request.h"

namespace alberta::serve {

class Connection; // defined in server.cc; jobs only carry the handle

/** One admitted run request: who asked, what to run, where to
 * answer. `connection` may be null in unit tests. */
struct QueueJob
{
    std::uint64_t client = 0; //!< connection id (lane key)
    std::uint64_t wireId = 0; //!< client-chosen request id, echoed
    core::RunRequest request;
    std::shared_ptr<Connection> connection;
};

/** Bounded multi-producer single-consumer queue with per-client FIFO
 * lanes drained round-robin (see file comment). */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /**
     * Admit @p job. Returns false — without blocking — when the
     * queue is at capacity or closed; the caller answers the client
     * with a rejection.
     */
    bool push(QueueJob job);

    /**
     * Take the next job, blocking while the queue is open and empty.
     * Lanes rotate round-robin per pop; within a lane jobs come out
     * in admission order. Returns false once the queue is closed
     * *and* fully drained — the dispatcher's exit condition.
     */
    bool pop(QueueJob *out);

    /** Stop admitting (push() returns false); pop() keeps returning
     * queued jobs until the queue is empty, then returns false. */
    void close();

    bool closed() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /** Pushes refused because the queue was full (not closed). */
    std::uint64_t rejected() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool closed_ = false;
    std::size_t size_ = 0;
    std::uint64_t rejected_ = 0;
    std::map<std::uint64_t, std::deque<QueueJob>> lanes_;
    std::deque<std::uint64_t> rotation_; //!< clients with queued jobs
};

} // namespace alberta::serve

#endif // ALBERTA_SERVE_QUEUE_H
