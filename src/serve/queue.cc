#include "serve/queue.h"

namespace alberta::serve {

bool
RequestQueue::push(QueueJob job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            return false;
        if (size_ >= capacity_) {
            ++rejected_;
            return false;
        }
        auto &lane = lanes_[job.client];
        if (lane.empty())
            rotation_.push_back(job.client);
        lane.push_back(std::move(job));
        ++size_;
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::pop(QueueJob *out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0)
        return false; // closed and drained
    const std::uint64_t client = rotation_.front();
    rotation_.pop_front();
    auto lane = lanes_.find(client);
    *out = std::move(lane->second.front());
    lane->second.pop_front();
    if (lane->second.empty())
        lanes_.erase(lane);
    else
        rotation_.push_back(client); // rotate to the back of the ring
    --size_;
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
}

std::uint64_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

} // namespace alberta::serve
