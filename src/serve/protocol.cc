#include "serve/protocol.h"

#include "support/check.h"
#include "support/json.h"

namespace alberta::serve {

namespace {

bool
knownOp(const std::string &op)
{
    return op == "run" || op == "metrics" || op == "ping" ||
           op == "shutdown";
}

} // namespace

WireRequest
parseRequestLine(std::string_view line)
{
    WireRequest out;
    // Slash shorthand: "/metrics" etc., for interactive clients.
    if (!line.empty() && line.front() == '/') {
        out.op = std::string(line.substr(1));
        support::fatalIf(!knownOp(out.op) || out.op == "run",
                         "protocol: unknown command '", line, "'");
        if (out.op == "metrics")
            out.run.kind = "metrics";
        return out;
    }
    const support::JsonValue value = support::parseJson(line);
    bool sawRun = false;
    for (const auto &[key, member] : value.asObject()) {
        if (key == "op")
            out.op = member.asString();
        else if (key == "id")
            out.id = member.asUint();
        else if (key == "run") {
            out.run = core::RunRequest::fromJson(member);
            sawRun = true;
        } else
            support::fatal("protocol: unknown key '", key, "'");
    }
    support::fatalIf(!knownOp(out.op), "protocol: unknown op '",
                     out.op,
                     "' (expected run, metrics, ping, or shutdown)");
    support::fatalIf(out.op == "run" && !sawRun,
                     "protocol: op 'run' requires a \"run\" member");
    if (out.op == "metrics")
        out.run.kind = "metrics";
    return out;
}

std::string
renderResponse(std::uint64_t id, const core::RunResult &result)
{
    // The id leads; the rest is the RunResult envelope unchanged, so
    // the payload stays the verbatim last member.
    std::string envelope = result.toJson();
    return "{\"id\":" + std::to_string(id) + "," +
           envelope.substr(1);
}

std::string
renderError(std::uint64_t id, std::string_view kind,
            std::string_view message)
{
    core::RunResult result;
    result.ok = false;
    result.kind = std::string(kind);
    result.error = std::string(message);
    return renderResponse(id, result);
}

WireResponse
parseResponseLine(std::string_view line)
{
    WireResponse out;
    const support::JsonValue value = support::parseJson(line);
    out.id = value.at("id").asUint();
    // RunResult::fromJsonText revalidates and slices the payload out
    // of the trailing member byte-identically.
    out.result = core::RunResult::fromJsonText(line);
    return out;
}

} // namespace alberta::serve
