#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <iostream>
#include <mutex>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"
#include "support/check.h"

namespace alberta::serve {

namespace {

runtime::Engine
makeEngine(const ServerOptions &options)
{
    return runtime::Engine::Builder()
        .jobs(options.jobs)
        .traceFile(options.traceFile)
        .cacheDirOption(options.cacheDir, options.cacheDirGiven)
        .build();
}

sockaddr_un
socketAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    support::fatalIf(path.size() >= sizeof(addr.sun_path),
                     "serve: socket path too long: ", path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** True when a live daemon answers on @p path (used to distinguish a
 * stale socket file from an active one before stealing the path). */
bool
socketIsLive(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const sockaddr_un addr = socketAddress(path);
    const bool live =
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0;
    ::close(fd);
    return live;
}

} // namespace

/** One accepted client: the fd, a write lock (the reader thread's
 * inline control-plane answers interleave with the dispatcher's run
 * responses), and liveness. Lifetime is shared between the server's
 * connection list and any jobs still queued for it. */
class Connection
{
  public:
    Connection(int fd, std::uint64_t id) : fd_(fd), id_(id) {}
    ~Connection() { ::close(fd_); }

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return fd_; }
    std::uint64_t id() const { return id_; }

    /** Write one response line; whole-line writes are serialized so
     * concurrent responders never interleave bytes. */
    void
    sendLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMu_);
        if (dead_.load(std::memory_order_relaxed))
            return;
        std::string framed = line;
        framed.push_back('\n');
        std::size_t off = 0;
        while (off < framed.size()) {
            const ssize_t n =
                ::send(fd_, framed.data() + off, framed.size() - off,
                       MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                dead_.store(true, std::memory_order_relaxed);
                return; // client went away; drop the response
            }
            off += static_cast<std::size_t>(n);
        }
    }

    /** Signal EOF both ways; wakes a reader blocked in read(). */
    void
    hangUp()
    {
        dead_.store(true, std::memory_order_relaxed);
        ::shutdown(fd_, SHUT_RDWR);
    }

  private:
    const int fd_;
    const std::uint64_t id_;
    std::mutex writeMu_;
    std::atomic<bool> dead_{false};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), engine_(makeEngine(options_)),
      queue_(options_.queueCapacity)
{
    support::fatalIf(options_.socketPath.empty(),
                     "serve: --socket requires a path");
}

Server::~Server()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
Server::serve()
{
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    support::fatalIf(listenFd_ < 0, "serve: socket(): ",
                     std::strerror(errno));
    const sockaddr_un addr = socketAddress(options_.socketPath);
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        support::fatalIf(errno != EADDRINUSE, "serve: bind(",
                         options_.socketPath,
                         "): ", std::strerror(errno));
        // The path exists. A live daemon keeps it; a stale socket
        // file (daemon killed hard) is reclaimed.
        support::fatalIf(socketIsLive(options_.socketPath),
                         "serve: another daemon is listening on ",
                         options_.socketPath);
        ::unlink(options_.socketPath.c_str());
        support::fatalIf(
            ::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0,
            "serve: bind(", options_.socketPath,
            "): ", std::strerror(errno));
    }
    support::fatalIf(::listen(listenFd_, 16) != 0,
                     "serve: listen(): ", std::strerror(errno));
    if (options_.verbose)
        std::cerr << "alberta_serve: listening on "
                  << options_.socketPath << " (jobs="
                  << engine_.jobs() << ", queue="
                  << queue_.capacity() << ")\n";

    std::thread dispatcher([this] { dispatchLoop(); });

    while (!shuttingDown_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener shut down (or unrecoverable)
        }
        auto connection =
            std::make_shared<Connection>(fd, nextClient_++);
        engine_.metrics().counter("serve.connections").add(1);
        connections_.push_back(connection);
        readers_.emplace_back(
            [this, connection] { readerLoop(connection); });
    }

    // Graceful drain: nothing new is admitted, everything admitted
    // is executed and answered, then clients get EOF.
    queue_.close();
    dispatcher.join();
    for (const auto &connection : connections_)
        connection->hangUp();
    for (auto &reader : readers_)
        reader.join();
    readers_.clear();
    connections_.clear();
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(options_.socketPath.c_str());
    engine_.flushTrace();
    if (options_.verbose)
        std::cerr << "alberta_serve: drained, served "
                  << served_.load() << " run request(s), exiting\n";
}

void
Server::beginShutdown()
{
    if (shuttingDown_.exchange(true))
        return;
    queue_.close();
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR); // wakes accept()
}

void
Server::dispatchLoop()
{
    QueueJob job;
    while (queue_.pop(&job)) {
        std::string line;
        try {
            const core::RunResult result =
                core::execute(job.request, engine_);
            line = renderResponse(job.wireId, result);
        } catch (const support::FatalError &e) {
            line = renderError(job.wireId, job.request.kind,
                               e.what());
        }
        served_.fetch_add(1);
        engine_.metrics().counter("serve.responses").add(1);
        if (job.connection)
            job.connection->sendLine(line);
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> connection)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            ::read(connection->fd(), chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos;
             nl = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(connection, line);
            start = nl + 1;
        }
        buffer.erase(0, start);
    }
}

void
Server::handleLine(const std::shared_ptr<Connection> &connection,
                   const std::string &line)
{
    WireRequest request;
    try {
        request = parseRequestLine(line);
    } catch (const support::FatalError &e) {
        connection->sendLine(renderError(0, "request", e.what()));
        return;
    }
    engine_.metrics().counter("serve.requests").add(1);

    if (request.op == "ping") {
        core::RunResult result;
        result.kind = "ping";
        result.payload = "{}";
        connection->sendLine(renderResponse(request.id, result));
        return;
    }
    if (request.op == "metrics") {
        // Control plane: answered by the reader thread, out of band,
        // so a probe is never queued behind a suite run.
        std::string response;
        try {
            const core::RunResult result =
                core::execute(request.run, engine_);
            response = renderResponse(request.id, result);
        } catch (const support::FatalError &e) {
            response =
                renderError(request.id, "metrics", e.what());
        }
        connection->sendLine(response);
        return;
    }
    if (request.op == "shutdown") {
        core::RunResult result;
        result.kind = "shutdown";
        result.payload = "{}";
        connection->sendLine(renderResponse(request.id, result));
        beginShutdown();
        return;
    }

    // op == "run": admission-controlled, dispatcher-executed.
    QueueJob job;
    job.client = connection->id();
    job.wireId = request.id;
    job.request = request.run;
    job.connection = connection;
    if (!queue_.push(std::move(job))) {
        const std::string reason =
            shuttingDown_.load() || queue_.closed()
                ? "draining: server is shutting down"
                : "queue full (capacity " +
                      std::to_string(queue_.capacity()) + ")";
        engine_.metrics().counter("serve.rejected").add(1);
        connection->sendLine(
            renderError(request.id, request.run.kind, reason));
    }
}

} // namespace alberta::serve
