/**
 * @file
 * The daemon's wire protocol: one JSON object per line, both ways.
 *
 * Request lines:
 *
 *   {"op":"run","id":7,"run":{...RunRequest...}}
 *   {"op":"metrics","id":8}
 *   {"op":"ping","id":9}
 *   {"op":"shutdown","id":10}
 *
 * plus the `nc`-friendly shorthand of a bare slash command —
 * `/metrics`, `/ping`, `/shutdown` — which parses as the matching op
 * with id 0.
 *
 * Response lines echo the request id and wrap a core::RunResult:
 *
 *   {"id":7,"ok":true,"kind":"suite","payload":<deliverable>}
 *   {"id":7,"ok":false,"kind":"run","error":"..."}
 *
 * The payload is embedded verbatim as the **last** member (exactly as
 * RunResult::toJson does), so a client slicing the trailing member
 * recovers the deliverable byte-identically to `alberta_cli
 * --format json` on the same cache — never re-encoded, never
 * reordered. parseResponseLine() does that slice.
 */
#ifndef ALBERTA_SERVE_PROTOCOL_H
#define ALBERTA_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>

#include "core/request.h"

namespace alberta::serve {

/** A parsed request line (see file comment for the grammar). */
struct WireRequest
{
    std::string op; //!< "run" | "metrics" | "ping" | "shutdown"
    std::uint64_t id = 0;
    core::RunRequest run; //!< meaningful when op == "run"
};

/** A parsed response line: the echoed id plus the result. */
struct WireResponse
{
    std::uint64_t id = 0;
    core::RunResult result;
};

/** Parse one request line; raises support::FatalError on malformed
 * JSON, an unknown op, or an invalid embedded RunRequest. */
WireRequest parseRequestLine(std::string_view line);

/** Render one response line (no trailing newline): the id first,
 * then the RunResult envelope with the payload verbatim and last. */
std::string renderResponse(std::uint64_t id,
                           const core::RunResult &result);

/** Shorthand for a failed response with @p kind echoed. */
std::string renderError(std::uint64_t id, std::string_view kind,
                        std::string_view message);

/** Parse a response line, recovering the payload byte-identically. */
WireResponse parseResponseLine(std::string_view line);

} // namespace alberta::serve

#endif // ALBERTA_SERVE_PROTOCOL_H
