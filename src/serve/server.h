/**
 * @file
 * `alberta_serve` — characterization as a service.
 *
 * One long-running Server owns one runtime::Engine (worker pool,
 * result cache with optional disk backing, metrics registry, tracer)
 * and accepts requests over a local AF_UNIX stream socket using the
 * line-delimited JSON protocol in serve/protocol.h. Clients submit
 * the same serializable core::RunRequest the CLI constructs, and run
 * deliverables come back byte-identical to `alberta_cli --format
 * json` on the same cache.
 *
 * Threading model — chosen so ordering guarantees are structural,
 * not incidental:
 *
 *  - one **reader thread per connection** parses request lines and
 *    answers the control plane (ping, metrics, shutdown) inline;
 *  - run requests are admitted to a bounded RequestQueue (full or
 *    draining queue → immediate rejection response);
 *  - one **dispatcher thread** executes admitted jobs serially
 *    through the shared engine — parallelism lives *inside* a
 *    request (the engine's pool, the suite scheduler, segment
 *    replays), so per-client FIFO response order is trivially
 *    guaranteed and two suite requests never interleave their
 *    scheduler batches;
 *  - metrics responses are answered from obs::Registry out of band —
 *    a monitoring probe is never stuck behind a queued suite run.
 *
 * Shutdown (SIGTERM via the binary's self-pipe, a client's
 * "shutdown" op, or beginShutdown()) is graceful: the listener
 * closes, the queue stops admitting, everything already admitted
 * runs to completion and is answered, then connections are drained
 * and the socket file removed.
 *
 * Several daemons may share one --cache-dir: the persistent cache's
 * atomic-rename writes and content-keyed entries make concurrent
 * writers safe (results are deterministic, so a race writes the same
 * bytes), and each daemon warms from the others' results.
 */
#ifndef ALBERTA_SERVE_SERVER_H
#define ALBERTA_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.h"
#include "serve/queue.h"

namespace alberta::serve {

/** Configuration for one Server (see file comment). */
struct ServerOptions
{
    /** Filesystem path of the AF_UNIX listening socket (required). */
    std::string socketPath;
    /** Engine worker threads (0 = hardware concurrency). */
    int jobs = 0;
    /** --cache-dir value and whether it was explicitly given; fed to
     * Engine::Builder::cacheDirOption (explicit flag wins, else
     * ALBERTA_CACHE_DIR, else no persistence). */
    std::string cacheDir;
    bool cacheDirGiven = false;
    /** JSON-lines span trace of the serving session ("" = off). */
    std::string traceFile;
    /** Admission bound on queued (not yet executing) run requests. */
    std::size_t queueCapacity = 64;
    /** Log lifecycle lines (listening / drained) to stderr. */
    bool verbose = false;
};

/** The daemon: one engine, one socket, one dispatcher. */
class Server
{
  public:
    /** Builds the shared engine; raises support::FatalError for an
     * unusable cache directory (same diagnostic as the CLI). */
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and serve until shutdown; returns after the
     * graceful drain completes and the socket file is removed.
     * Raises support::FatalError when the socket cannot be bound or
     * another live daemon already owns the path.
     */
    void serve();

    /** Start the graceful drain (thread-safe, idempotent): stop
     * accepting, reject new admissions, finish and answer everything
     * already admitted, then return from serve(). */
    void beginShutdown();

    /** The shared engine (valid for the Server's lifetime). */
    runtime::Engine &engine() { return engine_; }

    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    /** Run requests executed and answered (success or error). */
    std::uint64_t requestsServed() const { return served_.load(); }

    /** Run requests refused by admission control. */
    std::uint64_t requestsRejected() const
    {
        return queue_.rejected();
    }

  private:
    void dispatchLoop();
    void readerLoop(std::shared_ptr<Connection> connection);
    void handleLine(const std::shared_ptr<Connection> &connection,
                    const std::string &line);

    ServerOptions options_;
    runtime::Engine engine_;
    RequestQueue queue_;
    int listenFd_ = -1;
    std::atomic<bool> shuttingDown_{false};
    std::atomic<std::uint64_t> served_{0};
    std::uint64_t nextClient_ = 1;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> readers_;
};

} // namespace alberta::serve

#endif // ALBERTA_SERVE_SERVER_H
