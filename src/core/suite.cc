#include "core/suite.h"

#include <algorithm>
#include <optional>

#include "benchmarks/blender/benchmark.h"
#include "benchmarks/cactubssn/benchmark.h"
#include "benchmarks/deepsjeng/benchmark.h"
#include "benchmarks/exchange2/benchmark.h"
#include "benchmarks/gcc/benchmark.h"
#include "benchmarks/lbm/benchmark.h"
#include "benchmarks/leela/benchmark.h"
#include "benchmarks/mcf/benchmark.h"
#include "benchmarks/nab/benchmark.h"
#include "benchmarks/omnetpp/benchmark.h"
#include "benchmarks/parest/benchmark.h"
#include "benchmarks/povray/benchmark.h"
#include "benchmarks/wrf/benchmark.h"
#include "benchmarks/x264/benchmark.h"
#include "benchmarks/xalancbmk/benchmark.h"
#include "benchmarks/xz/benchmark.h"
#include "core/report.h"
#include "support/check.h"

namespace alberta::core {

std::vector<std::unique_ptr<runtime::Benchmark>>
allBenchmarks()
{
    std::vector<std::unique_ptr<runtime::Benchmark>> out;
    out.push_back(std::make_unique<gcc::GccBenchmark>());
    out.push_back(std::make_unique<mcf::McfBenchmark>());
    out.push_back(std::make_unique<cactubssn::CactuBssnBenchmark>());
    out.push_back(std::make_unique<parest::ParestBenchmark>());
    out.push_back(std::make_unique<povray::PovrayBenchmark>());
    out.push_back(std::make_unique<lbm::LbmBenchmark>());
    out.push_back(std::make_unique<omnetpp::OmnetppBenchmark>());
    out.push_back(std::make_unique<wrf::WrfBenchmark>());
    out.push_back(std::make_unique<xalancbmk::XalancbmkBenchmark>());
    out.push_back(std::make_unique<x264::X264Benchmark>());
    out.push_back(std::make_unique<blender::BlenderBenchmark>());
    out.push_back(std::make_unique<deepsjeng::DeepsjengBenchmark>());
    out.push_back(std::make_unique<leela::LeelaBenchmark>());
    out.push_back(std::make_unique<nab::NabBenchmark>());
    out.push_back(std::make_unique<exchange2::Exchange2Benchmark>());
    out.push_back(std::make_unique<xz::XzBenchmark>());
    return out;
}

std::unique_ptr<runtime::Benchmark>
makeBenchmark(const std::string &name)
{
    for (auto &bm : allBenchmarks()) {
        if (bm->name() == name)
            return std::move(bm);
    }
    support::fatal("suite: unknown benchmark '", name, "'");
}

const std::vector<std::string> &
table2Names()
{
    static const std::vector<std::string> names = {
        "502.gcc_r",       "505.mcf_r",       "507.cactuBSSN_r",
        "510.parest_r",    "511.povray_r",    "519.lbm_r",
        "520.omnetpp_r",   "521.wrf_r",       "523.xalancbmk_r",
        "526.blender_r",   "531.deepsjeng_r", "541.leela_r",
        "544.nab_r",       "548.exchange2_r", "557.xz_r"};
    return names;
}

Characterization
characterize(const runtime::Benchmark &benchmark,
             const CharacterizeOptions &options)
{
    Characterization c;
    c.benchmark = benchmark.name();
    c.area = benchmark.area();

    // Select the workloads up front so results can be gathered in
    // workload order no matter which worker finishes first.
    std::vector<runtime::Workload> workloads;
    for (auto &workload : benchmark.workloads()) {
        if (!options.includeTest && workload.name == "test")
            continue;
        workloads.push_back(std::move(workload));
    }
    support::fatalIf(workloads.empty(), "suite: ", benchmark.name(),
                     " has no workloads");

    const int repetitions = std::max(1, options.refrateRepetitions);
    std::size_t refrateIndex = workloads.size();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (workloads[i].isRefrate()) {
            refrateIndex = i;
            break;
        }
    }

    // Resolve the execution session. An Engine supersedes the
    // deprecated raw-pointer fields, which remain as a one-release
    // compatibility shim.
    runtime::Engine *engine = options.engine;
    runtime::Executor *executor = nullptr;
    runtime::ResultCache *cache = nullptr;
    runtime::ExecutorStats *statsOut = nullptr;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
    executor = options.executor;
    cache = options.cache;
    statsOut = options.stats;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
    obs::Tracer *tracer = nullptr;
    if (engine) {
        executor = &engine->executor();
        cache = &engine->cache();
        statsOut = &engine->stats();
        tracer = &engine->tracer();
    }

    obs::Span root(tracer, benchmark.name(), "characterize");
    root.note("workloads",
              static_cast<std::uint64_t>(workloads.size()));

    const std::uint64_t hitsBefore = cache ? cache->hits() : 0;
    const std::uint64_t missesBefore = cache ? cache->misses() : 0;

    std::optional<runtime::Executor> local;
    if (!executor) {
        local.emplace(options.jobs);
        executor = &*local;
    }
    const runtime::ExecutorStats statsBefore = executor->stats();

    // Phase 1: every workload except refrate runs through the pool;
    // each task owns a fresh ExecutionContext, so model outputs are
    // bit-identical to the serial path. The batch doubles as the
    // cache-probe batch: each task probes the result cache once.
    std::vector<std::size_t> modelIndices;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (i != refrateIndex)
            modelIndices.push_back(i);
    }
    std::vector<runtime::RunMeasurement> results(workloads.size());
    {
        obs::Span batch(tracer, "model_batch", "cache_probe",
                        root.id());
        const std::uint64_t batchId = batch.id();
        executor->parallelFor(
            modelIndices.size(), [&](std::size_t task) {
                const std::size_t i = modelIndices[task];
                obs::Span run(tracer, workloads[i].name, "model_run",
                              batchId);
                results[i] = runtime::measureCached(
                    benchmark, workloads[i], cache);
                run.note("uops", results[i].retiredOps);
            });
        batch.note("runs",
                   static_cast<std::uint64_t>(modelIndices.size()));
        if (cache) {
            batch.note("cache_hits", cache->hits() - hitsBefore);
            batch.note("cache_misses",
                       cache->misses() - missesBefore);
        }
    }

    // Phase 2: timed refrate repetitions on the (now quiesced) calling
    // thread; the first timed run doubles as refrate's model run.
    if (refrateIndex != workloads.size()) {
        const runtime::Workload &refrate = workloads[refrateIndex];
        runtime::CachedRun cached;
        if (cache && cache->lookup(benchmark, refrate, &cached) &&
            static_cast<int>(cached.timedSeconds.size()) >=
                repetitions) {
            obs::Span replay(tracer, "refrate_replay", "cache_probe",
                             root.id());
            replay.note("reps",
                        static_cast<std::uint64_t>(repetitions));
            results[refrateIndex] = cached.measurement;
            c.refrateRuns.assign(cached.timedSeconds.begin(),
                                 cached.timedSeconds.begin() +
                                     repetitions);
        } else {
            for (int rep = 0; rep < repetitions; ++rep) {
                obs::Span timed(tracer, refrate.name, "refrate_rep",
                                root.id());
                timed.note("rep", static_cast<std::uint64_t>(rep));
                const runtime::RunMeasurement m =
                    runtime::runOnce(benchmark, refrate);
                timed.note("seconds", m.seconds);
                if (rep == 0)
                    results[refrateIndex] = m;
                c.refrateRuns.push_back(m.seconds);
            }
            if (cache)
                cache->insert(benchmark, refrate,
                              {results[refrateIndex], c.refrateRuns});
        }
    }

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        c.workloadNames.push_back(workloads[i].name);
        c.topdownPerWorkload.push_back(results[i].topdown);
        c.coveragePerWorkload.push_back(results[i].coverage);
        c.checksumPerWorkload.push_back(results[i].checksum);
    }

    if (statsOut) {
        const runtime::ExecutorStats after = executor->stats();
        runtime::ExecutorStats delta;
        delta.tasksRun = after.tasksRun - statsBefore.tasksRun;
        delta.queueSeconds =
            after.queueSeconds - statsBefore.queueSeconds;
        delta.runSeconds = after.runSeconds - statsBefore.runSeconds;
        delta.cacheHits = cache ? cache->hits() - hitsBefore : 0;
        delta.cacheMisses = cache ? cache->misses() - missesBefore : 0;
        for (const runtime::RunMeasurement &r : results)
            delta.uopsRetired += r.retiredOps;
        statsOut->merge(delta);
        if (engine) {
            auto &registry = engine->metrics();
            registry.counter("characterize.calls").add(1);
            registry.counter("characterize.model_runs")
                .add(workloads.size());
            registry.counter("characterize.uops")
                .add(delta.uopsRetired);
            registry.histogram("characterize.run_seconds")
                .record(delta.runSeconds);
        }
    }

    {
        obs::Span summarize(tracer, "summarize", "summarize",
                            root.id());
        c.topdown = stats::summarizeTopdown(c.topdownPerWorkload);
        c.coverage = stats::summarizeCoverage(c.coveragePerWorkload);
    }
    if (!c.refrateRuns.empty()) {
        double sum = 0.0;
        for (const double t : c.refrateRuns)
            sum += t;
        c.refrateSeconds = sum / c.refrateRuns.size();
    }
    return c;
}

std::vector<std::string>
table2Header()
{
    // Thin wrapper: the columns come from the same structured fields
    // that drive the JSON emission (core::table2Fields), computed on
    // a default Characterization since labels are value-independent.
    std::vector<std::string> out;
    for (const Table2Field &f : table2Fields(Characterization{}))
        out.push_back(f.column);
    return out;
}

std::vector<std::string>
table2Row(const Characterization &c)
{
    std::vector<std::string> out;
    for (const Table2Field &f : table2Fields(c))
        out.push_back(f.text);
    return out;
}

} // namespace alberta::core
