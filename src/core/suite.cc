#include "core/suite.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>

#include "benchmarks/blender/benchmark.h"
#include "benchmarks/cactubssn/benchmark.h"
#include "benchmarks/deepsjeng/benchmark.h"
#include "benchmarks/exchange2/benchmark.h"
#include "benchmarks/gcc/benchmark.h"
#include "benchmarks/lbm/benchmark.h"
#include "benchmarks/leela/benchmark.h"
#include "benchmarks/mcf/benchmark.h"
#include "benchmarks/nab/benchmark.h"
#include "benchmarks/omnetpp/benchmark.h"
#include "benchmarks/parest/benchmark.h"
#include "benchmarks/povray/benchmark.h"
#include "benchmarks/wrf/benchmark.h"
#include "benchmarks/x264/benchmark.h"
#include "benchmarks/xalancbmk/benchmark.h"
#include "benchmarks/xz/benchmark.h"
#include "core/report.h"
#include "runtime/scheduler.h"
#include "support/check.h"
#include "topdown/machine.h"

namespace alberta::core {

std::vector<std::unique_ptr<runtime::Benchmark>>
allBenchmarks()
{
    std::vector<std::unique_ptr<runtime::Benchmark>> out;
    out.push_back(std::make_unique<gcc::GccBenchmark>());
    out.push_back(std::make_unique<mcf::McfBenchmark>());
    out.push_back(std::make_unique<cactubssn::CactuBssnBenchmark>());
    out.push_back(std::make_unique<parest::ParestBenchmark>());
    out.push_back(std::make_unique<povray::PovrayBenchmark>());
    out.push_back(std::make_unique<lbm::LbmBenchmark>());
    out.push_back(std::make_unique<omnetpp::OmnetppBenchmark>());
    out.push_back(std::make_unique<wrf::WrfBenchmark>());
    out.push_back(std::make_unique<xalancbmk::XalancbmkBenchmark>());
    out.push_back(std::make_unique<x264::X264Benchmark>());
    out.push_back(std::make_unique<blender::BlenderBenchmark>());
    out.push_back(std::make_unique<deepsjeng::DeepsjengBenchmark>());
    out.push_back(std::make_unique<leela::LeelaBenchmark>());
    out.push_back(std::make_unique<nab::NabBenchmark>());
    out.push_back(std::make_unique<exchange2::Exchange2Benchmark>());
    out.push_back(std::make_unique<xz::XzBenchmark>());
    return out;
}

std::unique_ptr<runtime::Benchmark>
makeBenchmark(const std::string &name)
{
    for (auto &bm : allBenchmarks()) {
        if (bm->name() == name)
            return std::move(bm);
    }
    support::fatal("suite: unknown benchmark '", name, "'");
}

const std::vector<std::string> &
table2Names()
{
    static const std::vector<std::string> names = {
        "502.gcc_r",       "505.mcf_r",       "507.cactuBSSN_r",
        "510.parest_r",    "511.povray_r",    "519.lbm_r",
        "520.omnetpp_r",   "521.wrf_r",       "523.xalancbmk_r",
        "526.blender_r",   "531.deepsjeng_r", "541.leela_r",
        "544.nab_r",       "548.exchange2_r", "557.xz_r"};
    return names;
}

Characterization
characterize(const runtime::Benchmark &benchmark,
             const RunRequest &request, runtime::Engine *engine)
{
    Characterization c;
    c.benchmark = benchmark.name();
    c.area = benchmark.area();

    // Select the workloads up front so results can be gathered in
    // workload order no matter which worker finishes first.
    std::vector<runtime::Workload> workloads;
    for (auto &workload : benchmark.workloads()) {
        if (!request.includeTest && workload.name == "test")
            continue;
        workloads.push_back(std::move(workload));
    }
    support::fatalIf(workloads.empty(), "suite: ", benchmark.name(),
                     " has no workloads");

    const int repetitions = std::max(1, request.refrateRepetitions);
    std::size_t refrateIndex = workloads.size();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (workloads[i].isRefrate()) {
            refrateIndex = i;
            break;
        }
    }

    // Resolve the execution session from the engine (or run a local
    // pool with no cache when none is given).
    runtime::Executor *executor =
        engine ? &engine->executor() : nullptr;
    runtime::ResultCache *cache = engine ? &engine->cache() : nullptr;
    runtime::ExecutorStats *statsOut =
        engine ? &engine->stats() : nullptr;
    obs::Tracer *tracer = engine ? &engine->tracer() : nullptr;

    obs::Span root(tracer, benchmark.name(), "characterize");
    root.note("workloads",
              static_cast<std::uint64_t>(workloads.size()));

    const std::uint64_t hitsBefore = cache ? cache->hits() : 0;
    const std::uint64_t missesBefore = cache ? cache->misses() : 0;
    const topdown::BatchCounters &bc = topdown::batchCounters();
    const std::uint64_t batchBlocksBefore = bc.blocks.load();
    const std::uint64_t batchFallbacksBefore = bc.fallbackBlocks.load();

    std::optional<runtime::Executor> local;
    if (!executor) {
        local.emplace(request.jobs);
        executor = &*local;
    }
    const runtime::ExecutorStats statsBefore = executor->stats();

    // Phase 1: every workload except refrate runs through the pool;
    // each task owns a fresh ExecutionContext, so model outputs are
    // bit-identical to the serial path. The batch doubles as the
    // cache-probe batch: each task probes the result cache once.
    std::vector<std::size_t> modelIndices;
    std::vector<std::size_t> segmentedIndices;
    std::vector<int> segmentCounts(workloads.size(), 1);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (i == refrateIndex)
            continue;
        segmentCounts[i] = runtime::resolveSegments(
            request.segments, benchmark.costHint(workloads[i]),
            request.segmentTargetUops, executor->jobs());
        if (segmentCounts[i] > 1)
            segmentedIndices.push_back(i);
        else
            modelIndices.push_back(i);
    }
    std::vector<runtime::RunMeasurement> results(workloads.size());
    // Phase 1a: segmented workloads, one at a time — the record pass
    // is inherently serial, but each workload's segment replays fan
    // out across the pool, shrinking its single-run latency.
    for (const std::size_t i : segmentedIndices) {
        obs::Span run(tracer, workloads[i].name, "segment_run",
                      root.id());
        runtime::SegmentOptions seg;
        seg.segments = segmentCounts[i];
        seg.warmupUops = request.segmentWarmupUops;
        seg.executor = executor;
        seg.cache = cache;
        seg.metrics = engine ? &engine->metrics() : nullptr;
        results[i] = runtime::runSegmented(benchmark, workloads[i], seg);
        run.note("segments",
                 static_cast<std::uint64_t>(segmentCounts[i]));
        run.note("uops", results[i].retiredOps);
    }
    {
        obs::Span batch(tracer, "model_batch", "cache_probe",
                        root.id());
        const std::uint64_t batchId = batch.id();
        executor->parallelFor(
            modelIndices.size(), [&](std::size_t task) {
                const std::size_t i = modelIndices[task];
                obs::Span run(tracer, workloads[i].name, "model_run",
                              batchId);
                results[i] =
                    request.batched
                        ? runtime::measureBatchedExact(
                              benchmark, workloads[i], cache)
                        : runtime::measureCached(benchmark,
                                                 workloads[i], cache);
                run.note("uops", results[i].retiredOps);
            });
        batch.note("runs",
                   static_cast<std::uint64_t>(modelIndices.size()));
        if (cache) {
            batch.note("cache_hits", cache->hits() - hitsBefore);
            batch.note("cache_misses",
                       cache->misses() - missesBefore);
        }
    }

    // Phase 2: timed refrate repetitions on the (now quiesced) calling
    // thread; the first timed run doubles as refrate's model run.
    if (refrateIndex != workloads.size()) {
        const runtime::Workload &refrate = workloads[refrateIndex];
        runtime::CachedRun cached;
        if (cache && cache->lookup(benchmark, refrate, &cached) &&
            static_cast<int>(cached.timedSeconds.size()) >=
                repetitions) {
            obs::Span replay(tracer, "refrate_replay", "cache_probe",
                             root.id());
            replay.note("reps",
                        static_cast<std::uint64_t>(repetitions));
            results[refrateIndex] = cached.measurement;
            c.refrateRuns.assign(cached.timedSeconds.begin(),
                                 cached.timedSeconds.begin() +
                                     repetitions);
        } else {
            for (int rep = 0; rep < repetitions; ++rep) {
                obs::Span timed(tracer, refrate.name, "refrate_rep",
                                root.id());
                timed.note("rep", static_cast<std::uint64_t>(rep));
                const runtime::RunMeasurement m =
                    runtime::runOnce(benchmark, refrate);
                timed.note("seconds", m.seconds);
                if (rep == 0)
                    results[refrateIndex] = m;
                c.refrateRuns.push_back(m.seconds);
            }
            if (cache)
                cache->insert(benchmark, refrate,
                              {results[refrateIndex], c.refrateRuns});
        }
    }

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        c.workloadNames.push_back(workloads[i].name);
        c.topdownPerWorkload.push_back(results[i].topdown);
        c.coveragePerWorkload.push_back(results[i].coverage);
        c.checksumPerWorkload.push_back(results[i].checksum);
        c.secondsPerWorkload.push_back(results[i].seconds);
    }

    if (statsOut) {
        const runtime::ExecutorStats after = executor->stats();
        runtime::ExecutorStats delta;
        delta.tasksRun = after.tasksRun - statsBefore.tasksRun;
        delta.queueSeconds =
            after.queueSeconds - statsBefore.queueSeconds;
        delta.runSeconds = after.runSeconds - statsBefore.runSeconds;
        delta.cacheHits = cache ? cache->hits() - hitsBefore : 0;
        delta.cacheMisses = cache ? cache->misses() - missesBefore : 0;
        for (const runtime::RunMeasurement &r : results)
            delta.uopsRetired += r.retiredOps;
        statsOut->merge(delta);
        if (engine) {
            auto &registry = engine->metrics();
            registry.counter("characterize.calls").add(1);
            registry.counter("characterize.model_runs")
                .add(workloads.size());
            registry.counter("characterize.uops")
                .add(delta.uopsRetired);
            registry.histogram("characterize.run_seconds")
                .record(delta.runSeconds);
            registry.counter("batch.blocks")
                .add(bc.blocks.load() - batchBlocksBefore);
            registry.counter("batch.fallbacks")
                .add(bc.fallbackBlocks.load() -
                     batchFallbacksBefore);
        }
    }

    {
        obs::Span summarize(tracer, "summarize", "summarize",
                            root.id());
        c.topdown = stats::summarizeTopdown(c.topdownPerWorkload);
        c.coverage = stats::summarizeCoverage(c.coveragePerWorkload);
    }
    if (!c.refrateRuns.empty()) {
        double sum = 0.0;
        for (const double t : c.refrateRuns)
            sum += t;
        c.refrateSeconds = sum / c.refrateRuns.size();
    }
    return c;
}

namespace {

/** Per-benchmark gather slots for the suite scheduler: sized before
 * any task closure captures into them, so references stay stable. */
struct SuiteSlot
{
    std::vector<runtime::Workload> workloads;
    std::size_t refrateIndex = 0; //!< == workloads.size() when absent
    std::vector<runtime::RunMeasurement> results;
    std::vector<double> refrateRuns;
    bool insertRefrate = false; //!< refrate ran (vs cache replay)
};

/**
 * An expanding scheduler task for one segmented model run: the first
 * wave executes the record pass (or replays a cached spliced result),
 * then hands the scheduler one follow-up task per segment. The
 * replays interleave with every other benchmark's tasks in the next
 * wave; whichever replay finishes last splices and publishes the
 * result, so no wave-wide barrier waits on this workload.
 */
runtime::SuiteTask
makeSegmentTask(const std::string &key, SuiteSlot &slot,
                const runtime::Benchmark &bm, std::size_t i,
                runtime::ResultCache *cache, int segments,
                std::uint64_t warmupUops, double hint,
                obs::Registry *metrics)
{
    runtime::SuiteTask task;
    task.costKey = key;
    task.category = "segment_record";
    task.costHint = hint;
    task.expand = [&slot, &bm, i, cache, segments, warmupUops, key,
                   hint, metrics](obs::Span &span) {
        std::vector<runtime::SuiteTask> replays;
        const runtime::Workload spliceKey = runtime::splicedWorkload(
            slot.workloads[i], segments, warmupUops);
        runtime::CachedRun cached;
        if (cache && cache->lookup(bm, spliceKey, &cached)) {
            slot.results[i] = cached.measurement;
            return replays;
        }
        auto plan = std::make_shared<runtime::SegmentPlan>(
            runtime::recordSegments(bm, slot.workloads[i], segments,
                                    warmupUops));
        span.note("segments",
                  static_cast<std::uint64_t>(plan->segments));
        span.note("uops", plan->retiredOps);
        if (metrics) {
            metrics->counter("segment.record_uops")
                .add(plan->retiredOps);
            metrics->histogram("segment.record_seconds")
                .record(plan->recordSeconds);
        }
        auto deltas =
            std::make_shared<std::vector<runtime::SegmentDelta>>(
                plan->segments);
        auto remaining = std::make_shared<std::atomic<int>>(
            plan->segments);
        const double segmentHint =
            hint / static_cast<double>(plan->segments);
        for (int s = 0; s < plan->segments; ++s) {
            runtime::SuiteTask replay;
            replay.costKey = key + "#seg" + std::to_string(s) + "of" +
                             std::to_string(plan->segments);
            replay.category = "segment_replay";
            replay.costHint = segmentHint;
            replay.run = [&slot, &bm, i, cache, plan, deltas,
                          remaining, s, segments, warmupUops,
                          metrics](obs::Span &rspan) {
                (*deltas)[s] = runtime::measureSegment(
                    *plan, s, bm, slot.workloads[i], cache);
                rspan.note("uops", (*deltas)[s].retired);
                if (metrics) {
                    metrics->counter("segment.replay_uops")
                        .add((*deltas)[s].retired);
                    metrics->histogram("segment.replay_seconds")
                        .record((*deltas)[s].seconds);
                }
                if (remaining->fetch_sub(1) == 1) {
                    slot.results[i] = runtime::spliceSegments(
                        *plan, *deltas);
                    if (cache) {
                        cache->insert(
                            bm,
                            runtime::splicedWorkload(
                                slot.workloads[i], segments,
                                warmupUops),
                            {slot.results[i], {}});
                    }
                }
            };
            replays.push_back(std::move(replay));
        }
        return replays;
    };
    return task;
}

} // namespace

std::vector<Characterization>
characterizeSuite(
    std::span<const std::unique_ptr<runtime::Benchmark>> benchmarks,
    const RunRequest &request, runtime::Engine *engine)
{
    std::vector<Characterization> out(benchmarks.size());
    if (benchmarks.empty())
        return out;

    runtime::ResultCache *cache = engine ? &engine->cache() : nullptr;
    runtime::ExecutorStats *statsOut =
        engine ? &engine->stats() : nullptr;
    obs::Tracer *tracer = engine ? &engine->tracer() : nullptr;
    runtime::CostLedger *ledger = engine ? &engine->ledger() : nullptr;
    runtime::Executor *executor =
        engine ? &engine->executor() : nullptr;
    std::optional<runtime::Executor> local;
    if (!executor) {
        local.emplace(request.jobs);
        executor = &*local;
    }

    const int repetitions = std::max(1, request.refrateRepetitions);
    const std::uint64_t hitsBefore = cache ? cache->hits() : 0;
    const std::uint64_t missesBefore = cache ? cache->misses() : 0;
    const topdown::BatchCounters &bc = topdown::batchCounters();
    const std::uint64_t batchBlocksBefore = bc.blocks.load();
    const std::uint64_t batchFallbacksBefore = bc.fallbackBlocks.load();
    const runtime::ExecutorStats statsBefore = executor->stats();

    obs::Span root(tracer, "suite", "characterize_suite");
    root.note("benchmarks",
              static_cast<std::uint64_t>(benchmarks.size()));

    // Pass 1: select workloads and pre-size every gather slot.
    std::vector<SuiteSlot> slots(benchmarks.size());
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const runtime::Benchmark &bm = *benchmarks[b];
        SuiteSlot &slot = slots[b];
        for (auto &workload : bm.workloads()) {
            if (!request.includeTest && workload.name == "test")
                continue;
            slot.workloads.push_back(std::move(workload));
        }
        support::fatalIf(slot.workloads.empty(), "suite: ", bm.name(),
                         " has no workloads");
        slot.refrateIndex = slot.workloads.size();
        for (std::size_t i = 0; i < slot.workloads.size(); ++i) {
            if (slot.workloads[i].isRefrate()) {
                slot.refrateIndex = i;
                break;
            }
        }
        slot.results.resize(slot.workloads.size());
    }

    // Pass 2: flatten everything runnable — refrate repetitions
    // included — into one global task list. Cached refrates replay
    // immediately and schedule nothing. Every task carries the
    // benchmark's uop-count hint so a cold ledger still dispatches
    // the big runs first (the ledger converts hints to seconds
    // through its persisted calibration rate).
    std::vector<runtime::SuiteTask> tasks;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const runtime::Benchmark &bm = *benchmarks[b];
        SuiteSlot &slot = slots[b];
        for (std::size_t i = 0; i < slot.workloads.size(); ++i) {
            const std::string key =
                bm.name() + '/' + slot.workloads[i].name;
            const double hint = bm.costHint(slot.workloads[i]);
            if (i != slot.refrateIndex) {
                const int segments = runtime::resolveSegments(
                    request.segments, hint, request.segmentTargetUops,
                    executor->jobs());
                if (segments > 1) {
                    tasks.push_back(makeSegmentTask(
                        key, slot, bm, i, cache, segments,
                        request.segmentWarmupUops, hint,
                        engine ? &engine->metrics() : nullptr));
                    continue;
                }
                runtime::SuiteTask task;
                task.costKey = key;
                task.category = "model_run";
                task.costHint = hint;
                const bool batched = request.batched;
                task.run = [&slot, &bm, i, cache,
                            batched](obs::Span &span) {
                    slot.results[i] =
                        batched ? runtime::measureBatchedExact(
                                      bm, slot.workloads[i], cache)
                                : runtime::measureCached(
                                      bm, slot.workloads[i], cache);
                    span.note("uops", slot.results[i].retiredOps);
                };
                tasks.push_back(std::move(task));
                continue;
            }
            runtime::CachedRun cached;
            if (cache &&
                cache->lookup(bm, slot.workloads[i], &cached) &&
                static_cast<int>(cached.timedSeconds.size()) >=
                    repetitions) {
                obs::Span replay(tracer, "refrate_replay",
                                 "cache_probe", root.id());
                replay.note("benchmark", bm.name());
                slot.results[i] = cached.measurement;
                slot.refrateRuns.assign(cached.timedSeconds.begin(),
                                        cached.timedSeconds.begin() +
                                            repetitions);
                continue;
            }
            // Each timed repetition is its own task: it overlaps
            // other benchmarks' untimed runs instead of quiescing
            // the pool, and rep 0 doubles as refrate's model run.
            slot.insertRefrate = true;
            slot.refrateRuns.resize(repetitions);
            for (int rep = 0; rep < repetitions; ++rep) {
                runtime::SuiteTask task;
                task.costKey = key;
                task.category = "refrate_rep";
                task.costHint = hint;
                task.run = [&slot, &bm, i, rep](obs::Span &span) {
                    span.note("rep", static_cast<std::uint64_t>(rep));
                    const runtime::RunMeasurement m =
                        runtime::runOnce(bm, slot.workloads[i]);
                    span.note("seconds", m.seconds);
                    if (rep == 0)
                        slot.results[i] = m;
                    slot.refrateRuns[rep] = m.seconds;
                };
                tasks.push_back(std::move(task));
            }
        }
    }
    root.note("tasks", static_cast<std::uint64_t>(tasks.size()));

    runtime::Scheduler scheduler(
        executor, ledger, tracer,
        engine ? &engine->metrics() : nullptr);
    scheduler.run(std::move(tasks));

    // Gather: results sit in pre-sized per-benchmark slots in
    // workload order, so summaries are bit-identical to the serial
    // per-benchmark path.
    std::uint64_t totalWorkloads = 0;
    std::uint64_t totalUops = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const runtime::Benchmark &bm = *benchmarks[b];
        SuiteSlot &slot = slots[b];
        if (slot.insertRefrate && cache) {
            cache->insert(bm, slot.workloads[slot.refrateIndex],
                          {slot.results[slot.refrateIndex],
                           slot.refrateRuns});
        }
        Characterization c;
        c.benchmark = bm.name();
        c.area = bm.area();
        for (std::size_t i = 0; i < slot.workloads.size(); ++i) {
            c.workloadNames.push_back(slot.workloads[i].name);
            c.topdownPerWorkload.push_back(slot.results[i].topdown);
            c.coveragePerWorkload.push_back(slot.results[i].coverage);
            c.checksumPerWorkload.push_back(slot.results[i].checksum);
            c.secondsPerWorkload.push_back(slot.results[i].seconds);
            totalUops += slot.results[i].retiredOps;
        }
        totalWorkloads += slot.workloads.size();
        {
            obs::Span summarize(tracer, bm.name(), "summarize",
                                root.id());
            c.topdown = stats::summarizeTopdown(c.topdownPerWorkload);
            c.coverage =
                stats::summarizeCoverage(c.coveragePerWorkload);
        }
        c.refrateRuns = slot.refrateRuns;
        if (!c.refrateRuns.empty()) {
            double sum = 0.0;
            for (const double t : c.refrateRuns)
                sum += t;
            c.refrateSeconds = sum / c.refrateRuns.size();
        }
        out[b] = std::move(c);
    }

    if (statsOut) {
        const runtime::ExecutorStats after = executor->stats();
        runtime::ExecutorStats delta;
        delta.tasksRun = after.tasksRun - statsBefore.tasksRun;
        delta.queueSeconds =
            after.queueSeconds - statsBefore.queueSeconds;
        delta.runSeconds = after.runSeconds - statsBefore.runSeconds;
        delta.cacheHits = cache ? cache->hits() - hitsBefore : 0;
        delta.cacheMisses = cache ? cache->misses() - missesBefore : 0;
        delta.uopsRetired = totalUops;
        statsOut->merge(delta);
        if (engine) {
            auto &registry = engine->metrics();
            registry.counter("characterize.suite_runs").add(1);
            registry.counter("characterize.model_runs")
                .add(totalWorkloads);
            registry.counter("characterize.uops").add(totalUops);
            registry.histogram("characterize.run_seconds")
                .record(delta.runSeconds);
            registry.counter("batch.blocks")
                .add(bc.blocks.load() - batchBlocksBefore);
            registry.counter("batch.fallbacks")
                .add(bc.fallbackBlocks.load() -
                     batchFallbacksBefore);
        }
    }
    return out;
}

std::vector<Characterization>
characterizeTable2(const RunRequest &request, runtime::Engine *engine)
{
    std::vector<std::unique_ptr<runtime::Benchmark>> benchmarks;
    benchmarks.reserve(table2Names().size());
    for (const auto &name : table2Names())
        benchmarks.push_back(makeBenchmark(name));
    return characterizeSuite(benchmarks, request, engine);
}

std::vector<std::string>
table2Header()
{
    // Thin wrapper: the columns come from the same structured fields
    // that drive the JSON emission (core::table2Fields), computed on
    // a default Characterization since labels are value-independent.
    std::vector<std::string> out;
    for (const Table2Field &f : table2Fields(Characterization{}))
        out.push_back(f.column);
    return out;
}

std::vector<std::string>
table2Row(const Characterization &c)
{
    std::vector<std::string> out;
    for (const Table2Field &f : table2Fields(c))
        out.push_back(f.text);
    return out;
}

} // namespace alberta::core
