#include "core/suite.h"

#include <algorithm>
#include <optional>

#include "benchmarks/blender/benchmark.h"
#include "benchmarks/cactubssn/benchmark.h"
#include "benchmarks/deepsjeng/benchmark.h"
#include "benchmarks/exchange2/benchmark.h"
#include "benchmarks/gcc/benchmark.h"
#include "benchmarks/lbm/benchmark.h"
#include "benchmarks/leela/benchmark.h"
#include "benchmarks/mcf/benchmark.h"
#include "benchmarks/nab/benchmark.h"
#include "benchmarks/omnetpp/benchmark.h"
#include "benchmarks/parest/benchmark.h"
#include "benchmarks/povray/benchmark.h"
#include "benchmarks/wrf/benchmark.h"
#include "benchmarks/x264/benchmark.h"
#include "benchmarks/xalancbmk/benchmark.h"
#include "benchmarks/xz/benchmark.h"
#include "support/check.h"
#include "support/table.h"

namespace alberta::core {

std::vector<std::unique_ptr<runtime::Benchmark>>
allBenchmarks()
{
    std::vector<std::unique_ptr<runtime::Benchmark>> out;
    out.push_back(std::make_unique<gcc::GccBenchmark>());
    out.push_back(std::make_unique<mcf::McfBenchmark>());
    out.push_back(std::make_unique<cactubssn::CactuBssnBenchmark>());
    out.push_back(std::make_unique<parest::ParestBenchmark>());
    out.push_back(std::make_unique<povray::PovrayBenchmark>());
    out.push_back(std::make_unique<lbm::LbmBenchmark>());
    out.push_back(std::make_unique<omnetpp::OmnetppBenchmark>());
    out.push_back(std::make_unique<wrf::WrfBenchmark>());
    out.push_back(std::make_unique<xalancbmk::XalancbmkBenchmark>());
    out.push_back(std::make_unique<x264::X264Benchmark>());
    out.push_back(std::make_unique<blender::BlenderBenchmark>());
    out.push_back(std::make_unique<deepsjeng::DeepsjengBenchmark>());
    out.push_back(std::make_unique<leela::LeelaBenchmark>());
    out.push_back(std::make_unique<nab::NabBenchmark>());
    out.push_back(std::make_unique<exchange2::Exchange2Benchmark>());
    out.push_back(std::make_unique<xz::XzBenchmark>());
    return out;
}

std::unique_ptr<runtime::Benchmark>
makeBenchmark(const std::string &name)
{
    for (auto &bm : allBenchmarks()) {
        if (bm->name() == name)
            return std::move(bm);
    }
    support::fatal("suite: unknown benchmark '", name, "'");
}

const std::vector<std::string> &
table2Names()
{
    static const std::vector<std::string> names = {
        "502.gcc_r",       "505.mcf_r",       "507.cactuBSSN_r",
        "510.parest_r",    "511.povray_r",    "519.lbm_r",
        "520.omnetpp_r",   "521.wrf_r",       "523.xalancbmk_r",
        "526.blender_r",   "531.deepsjeng_r", "541.leela_r",
        "544.nab_r",       "548.exchange2_r", "557.xz_r"};
    return names;
}

Characterization
characterize(const runtime::Benchmark &benchmark,
             const CharacterizeOptions &options)
{
    Characterization c;
    c.benchmark = benchmark.name();
    c.area = benchmark.area();

    // Select the workloads up front so results can be gathered in
    // workload order no matter which worker finishes first.
    std::vector<runtime::Workload> workloads;
    for (auto &workload : benchmark.workloads()) {
        if (!options.includeTest && workload.name == "test")
            continue;
        workloads.push_back(std::move(workload));
    }
    support::fatalIf(workloads.empty(), "suite: ", benchmark.name(),
                     " has no workloads");

    const int repetitions = std::max(1, options.refrateRepetitions);
    std::size_t refrateIndex = workloads.size();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (workloads[i].isRefrate()) {
            refrateIndex = i;
            break;
        }
    }

    runtime::ResultCache *cache = options.cache;
    const std::uint64_t hitsBefore = cache ? cache->hits() : 0;
    const std::uint64_t missesBefore = cache ? cache->misses() : 0;

    runtime::Executor *executor = options.executor;
    std::optional<runtime::Executor> local;
    if (!executor) {
        local.emplace(options.jobs);
        executor = &*local;
    }
    const runtime::ExecutorStats statsBefore = executor->stats();

    // Phase 1: every workload except refrate runs through the pool;
    // each task owns a fresh ExecutionContext, so model outputs are
    // bit-identical to the serial path.
    std::vector<std::size_t> modelIndices;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (i != refrateIndex)
            modelIndices.push_back(i);
    }
    std::vector<runtime::RunMeasurement> results(workloads.size());
    executor->parallelFor(
        modelIndices.size(), [&](std::size_t task) {
            const std::size_t i = modelIndices[task];
            results[i] =
                runtime::measureCached(benchmark, workloads[i], cache);
        });

    // Phase 2: timed refrate repetitions on the (now quiesced) calling
    // thread; the first timed run doubles as refrate's model run.
    if (refrateIndex != workloads.size()) {
        const runtime::Workload &refrate = workloads[refrateIndex];
        runtime::CachedRun cached;
        if (cache && cache->lookup(benchmark, refrate, &cached) &&
            static_cast<int>(cached.timedSeconds.size()) >=
                repetitions) {
            results[refrateIndex] = cached.measurement;
            c.refrateRuns.assign(cached.timedSeconds.begin(),
                                 cached.timedSeconds.begin() +
                                     repetitions);
        } else {
            const runtime::RunMeasurement first =
                runtime::runOnce(benchmark, refrate);
            results[refrateIndex] = first;
            c.refrateRuns.push_back(first.seconds);
            for (int rep = 1; rep < repetitions; ++rep) {
                c.refrateRuns.push_back(
                    runtime::runOnce(benchmark, refrate).seconds);
            }
            if (cache)
                cache->insert(benchmark, refrate,
                              {first, c.refrateRuns});
        }
    }

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        c.workloadNames.push_back(workloads[i].name);
        c.topdownPerWorkload.push_back(results[i].topdown);
        c.coveragePerWorkload.push_back(results[i].coverage);
        c.checksumPerWorkload.push_back(results[i].checksum);
    }

    if (options.stats) {
        const runtime::ExecutorStats after = executor->stats();
        runtime::ExecutorStats delta;
        delta.tasksRun = after.tasksRun - statsBefore.tasksRun;
        delta.queueSeconds =
            after.queueSeconds - statsBefore.queueSeconds;
        delta.runSeconds = after.runSeconds - statsBefore.runSeconds;
        delta.cacheHits = cache ? cache->hits() - hitsBefore : 0;
        delta.cacheMisses = cache ? cache->misses() - missesBefore : 0;
        for (const runtime::RunMeasurement &r : results)
            delta.uopsRetired += r.retiredOps;
        options.stats->merge(delta);
    }

    c.topdown = stats::summarizeTopdown(c.topdownPerWorkload);
    c.coverage = stats::summarizeCoverage(c.coveragePerWorkload);
    if (!c.refrateRuns.empty()) {
        double sum = 0.0;
        for (const double t : c.refrateRuns)
            sum += t;
        c.refrateSeconds = sum / c.refrateRuns.size();
    }
    return c;
}

std::vector<std::string>
table2Header()
{
    return {"Benchmark", "#wl",   "f.mu_g", "f.sg",  "b.mu_g",
            "b.sg",      "s.mu_g", "s.sg",  "r.mu_g", "r.sg",
            "mu_g(V)",   "mu_g(M)", "refrate(s)"};
}

std::vector<std::string>
table2Row(const Characterization &c)
{
    using support::formatFixed;
    using support::formatPercent;
    return {
        c.benchmark,
        std::to_string(c.workloadNames.size()),
        formatPercent(c.topdown.frontend.mean, 1),
        formatFixed(c.topdown.frontend.stddev, 1),
        formatPercent(c.topdown.backend.mean, 1),
        formatFixed(c.topdown.backend.stddev, 1),
        formatPercent(c.topdown.badspec.mean, 1),
        formatFixed(c.topdown.badspec.stddev, 1),
        formatPercent(c.topdown.retiring.mean, 1),
        formatFixed(c.topdown.retiring.stddev, 1),
        formatFixed(c.topdown.muGV, 1),
        formatFixed(c.coverage.muGM, 2),
        formatFixed(c.refrateSeconds, 2),
    };
}

} // namespace alberta::core
