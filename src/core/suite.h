/**
 * @file
 * The Alberta Workloads suite: every mini-benchmark with its workload
 * set, plus the characterization pipeline that reproduces the paper's
 * Table II and Figures 1-2 (per-workload top-down fractions, method
 * coverage, and the mu_g(V) / mu_g(M) summaries).
 */
#ifndef ALBERTA_CORE_SUITE_H
#define ALBERTA_CORE_SUITE_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/request.h"
#include "runtime/benchmark.h"
#include "runtime/engine.h"
#include "runtime/segment.h"
#include "stats/summary.h"

namespace alberta::core {

/** Construct every benchmark the paper covers (INT + FP). */
std::vector<std::unique_ptr<runtime::Benchmark>> allBenchmarks();

/** Construct one benchmark by SPEC id (e.g. "505.mcf_r"). */
std::unique_ptr<runtime::Benchmark>
makeBenchmark(const std::string &name);

/** The 15 benchmarks of the paper's Table II, in row order. */
const std::vector<std::string> &table2Names();

/** Everything measured for one benchmark across its workloads. */
struct Characterization
{
    std::string benchmark;
    std::string area;
    std::vector<std::string> workloadNames;
    std::vector<stats::TopdownRatios> topdownPerWorkload;
    std::vector<stats::CoverageMap> coveragePerWorkload;
    std::vector<std::uint64_t> checksumPerWorkload;
    stats::TopdownSummary topdown;   //!< Eqs. 1-4 over the workloads
    stats::CoverageSummary coverage; //!< Eq. 5 over the workloads
    double refrateSeconds = 0.0;     //!< mean wall time, refrate
    std::vector<double> refrateRuns; //!< raw per-run times
    /**
     * Seconds of each workload's model run, in workload order. Exact
     * runs report wall time. Segmented runs report the critical path
     * (record pass plus the longest single replay) in thread CPU
     * seconds — the latency the run would have with unlimited
     * workers, the number segment parallelism exists to shrink —
     * which stays meaningful when concurrent replays oversubscribe
     * the cores.
     */
    std::vector<double> secondsPerWorkload;
};

/**
 * Run every workload of @p benchmark once through the model (plus
 * timed refrate repetitions) and summarize with the paper's
 * methodology.
 *
 * The run is configured by a @ref RunRequest — the same serializable
 * spec the CLI and the `alberta_serve` daemon construct — of which
 * only the model-configuration fields matter here (repetitions,
 * includeTest, jobs, segments, batched); the kind/benchmark/workload
 * routing fields are ignored because the benchmark is passed
 * directly.
 *
 * When @p engine is set it supplies the worker pool, result cache
 * (with optional disk backing), stats block, and observability layer
 * for the run and supersedes RunRequest::jobs. Model runs may
 * execute in parallel and are gathered in workload order; the timed
 * refrate repetitions always run on the calling thread after the
 * pool has drained so the wall-time column is measured on a quiesced
 * machine, with the first timed run doubling as refrate's model run.
 */
Characterization characterize(const runtime::Benchmark &benchmark,
                              const RunRequest &request = {},
                              runtime::Engine *engine = nullptr);

/**
 * Characterize a whole suite through the suite-level scheduler: every
 * (benchmark, workload) model run — refrate timed repetitions
 * included — across all of @p benchmarks is flattened into one global
 * task list and dispatched as a single Executor batch, ordered
 * longest-expected-first from the session's cost ledger. Results are
 * gathered into pre-sized per-benchmark slots, so every
 * Characterization is bit-identical to calling @ref characterize per
 * benchmark serially; returned in @p benchmarks order.
 *
 * Compared to the per-benchmark loop this removes the barrier between
 * benchmarks and lets refrate repetitions overlap other benchmarks'
 * untimed runs instead of quiescing the pool (refrate wall times are
 * therefore measured on a busy machine when jobs > 1 — model outputs
 * are unaffected).
 */
std::vector<Characterization> characterizeSuite(
    std::span<const std::unique_ptr<runtime::Benchmark>> benchmarks,
    const RunRequest &request = {},
    runtime::Engine *engine = nullptr);

/** @ref characterizeSuite over the 15 Table II benchmarks in row
 * order. */
std::vector<Characterization>
characterizeTable2(const RunRequest &request = {},
                   runtime::Engine *engine = nullptr);

/** One formatted Table II row (strings ready for printing). */
std::vector<std::string> table2Row(const Characterization &c);

/** The Table II header, matching @ref table2Row. */
std::vector<std::string> table2Header();

} // namespace alberta::core

#endif // ALBERTA_CORE_SUITE_H
