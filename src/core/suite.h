/**
 * @file
 * The Alberta Workloads suite: every mini-benchmark with its workload
 * set, plus the characterization pipeline that reproduces the paper's
 * Table II and Figures 1-2 (per-workload top-down fractions, method
 * coverage, and the mu_g(V) / mu_g(M) summaries).
 */
#ifndef ALBERTA_CORE_SUITE_H
#define ALBERTA_CORE_SUITE_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/benchmark.h"
#include "runtime/engine.h"
#include "runtime/segment.h"
#include "stats/summary.h"

namespace alberta::core {

/** Construct every benchmark the paper covers (INT + FP). */
std::vector<std::unique_ptr<runtime::Benchmark>> allBenchmarks();

/** Construct one benchmark by SPEC id (e.g. "505.mcf_r"). */
std::unique_ptr<runtime::Benchmark>
makeBenchmark(const std::string &name);

/** The 15 benchmarks of the paper's Table II, in row order. */
const std::vector<std::string> &table2Names();

/** Everything measured for one benchmark across its workloads. */
struct Characterization
{
    std::string benchmark;
    std::string area;
    std::vector<std::string> workloadNames;
    std::vector<stats::TopdownRatios> topdownPerWorkload;
    std::vector<stats::CoverageMap> coveragePerWorkload;
    std::vector<std::uint64_t> checksumPerWorkload;
    stats::TopdownSummary topdown;   //!< Eqs. 1-4 over the workloads
    stats::CoverageSummary coverage; //!< Eq. 5 over the workloads
    double refrateSeconds = 0.0;     //!< mean wall time, refrate
    std::vector<double> refrateRuns; //!< raw per-run times
    /**
     * Seconds of each workload's model run, in workload order. Exact
     * runs report wall time. Segmented runs report the critical path
     * (record pass plus the longest single replay) in thread CPU
     * seconds — the latency the run would have with unlimited
     * workers, the number segment parallelism exists to shrink —
     * which stays meaningful when concurrent replays oversubscribe
     * the cores.
     */
    std::vector<double> secondsPerWorkload;
};

/** Characterization options. */
struct CharacterizeOptions
{
    int refrateRepetitions = 3; //!< the paper's three timed runs
    bool includeTest = true;    //!< count "test" among workloads
    /**
     * Worker threads for the per-workload model runs: 1 = serial on
     * the calling thread, 0 = runtime::Executor::defaultJobs(), N > 1
     * = a pool of N. Ignored when @ref executor is set. Model outputs
     * are bit-identical regardless of the thread count.
     */
    int jobs = 1;
    /**
     * The run-session facade: pool, cache (with optional disk
     * backing), stats, and observability in one object. When set it
     * supersedes @ref jobs, model runs are traced through the
     * engine's tracer, and executor/cache activity accumulates into
     * `engine->stats()` and `engine->metrics()`.
     *
     * The historical `executor`/`cache`/`stats` raw-pointer triple
     * (deprecated in the release that introduced Engine) has been
     * removed; sessions are configured exclusively through here.
     */
    runtime::Engine *engine = nullptr;
    /**
     * Checkpoint-and-splice segment parallelism for model runs:
     * 1 (default) runs every workload exact; 0 = auto, cutting
     * workloads whose estimated uop count (Benchmark::costHint)
     * exceeds @ref segmentTargetUops into roughly estimate/target
     * segments, capped by the worker count; N > 1 forces N segments
     * for every model run. Timed refrate repetitions always execute
     * exact — their wall time is the paper's measurement. Spliced
     * top-down fractions differ from exact by < 1e-3 absolute
     * (pinned by test); spliced and exact results cache under
     * distinct keys, so the two never serve each other's entries.
     */
    int segments = 1;
    /** Warm-up uops replayed ahead of each segment. */
    std::uint64_t segmentWarmupUops =
        runtime::kDefaultSegmentWarmupUops;
    /** Auto segmentation (segments == 0) aims for about this many
     * retired uops per segment. */
    std::uint64_t segmentTargetUops = 16'000'000;
    /**
     * Route untimed model runs through the trace-backed batched-exact
     * path (`runtime::measureBatchedExact`): capture the workload
     * once, then replay the whole trace through the block-batched
     * kernel (`Machine::replayBatched`). Outputs are bit-identical to
     * exact runs and cache under the same plain workload keys, so
     * batched and direct sessions serve each other's entries. Timed
     * refrate repetitions always execute direct — their wall time is
     * the paper's measurement. Ignored for workloads that segment
     * (segment replays already run through the batched kernel).
     */
    bool batched = false;
};

/**
 * Run every workload of @p benchmark once through the model (plus
 * timed refrate repetitions) and summarize with the paper's
 * methodology.
 *
 * Model runs may execute in parallel (see CharacterizeOptions::jobs)
 * and are gathered in workload order; the timed refrate repetitions
 * always run on the calling thread after the pool has drained so the
 * wall-time column is measured on a quiesced machine, with the first
 * timed run doubling as refrate's model run.
 */
Characterization characterize(const runtime::Benchmark &benchmark,
                              const CharacterizeOptions &options = {});

/**
 * Characterize a whole suite through the suite-level scheduler: every
 * (benchmark, workload) model run — refrate timed repetitions
 * included — across all of @p benchmarks is flattened into one global
 * task list and dispatched as a single Executor batch, ordered
 * longest-expected-first from the session's cost ledger. Results are
 * gathered into pre-sized per-benchmark slots, so every
 * Characterization is bit-identical to calling @ref characterize per
 * benchmark serially; returned in @p benchmarks order.
 *
 * Compared to the per-benchmark loop this removes the barrier between
 * benchmarks and lets refrate repetitions overlap other benchmarks'
 * untimed runs instead of quiescing the pool (refrate wall times are
 * therefore measured on a busy machine when jobs > 1 — model outputs
 * are unaffected).
 */
std::vector<Characterization> characterizeSuite(
    std::span<const std::unique_ptr<runtime::Benchmark>> benchmarks,
    const CharacterizeOptions &options = {});

/** @ref characterizeSuite over the 15 Table II benchmarks in row
 * order. */
std::vector<Characterization>
characterizeTable2(const CharacterizeOptions &options = {});

/** One formatted Table II row (strings ready for printing). */
std::vector<std::string> table2Row(const Characterization &c);

/** The Table II header, matching @ref table2Row. */
std::vector<std::string> table2Header();

} // namespace alberta::core

#endif // ALBERTA_CORE_SUITE_H
