#include "core/request.h"

#include <sstream>

#include "core/report.h"
#include "core/suite.h"
#include "runtime/result_cache.h"
#include "support/check.h"
#include "support/text.h"

namespace alberta::core {

namespace {

using support::jsonNumber;
using support::jsonQuote;

/** Strip the rendered deliverable's trailing newline: payloads embed
 * verbatim inside one response line, so they must be newline-free. */
std::string
chompPayload(std::string text)
{
    while (!text.empty() && text.back() == '\n')
        text.pop_back();
    return text;
}

} // namespace

std::string
RunRequest::toJson() const
{
    std::ostringstream os;
    os << "{\"kind\":" << jsonQuote(kind)
       << ",\"benchmark\":" << jsonQuote(benchmark)
       << ",\"workload\":" << jsonQuote(workload)
       << ",\"refrate_repetitions\":" << refrateRepetitions
       << ",\"include_test\":" << (includeTest ? "true" : "false")
       << ",\"jobs\":" << jobs << ",\"segments\":" << segments
       << ",\"segment_warmup_uops\":" << segmentWarmupUops
       << ",\"segment_target_uops\":" << segmentTargetUops
       << ",\"batched\":" << (batched ? "true" : "false") << '}';
    return os.str();
}

RunRequest
RunRequest::fromJson(const support::JsonValue &value)
{
    RunRequest request;
    for (const auto &[key, member] : value.asObject()) {
        if (key == "kind")
            request.kind = member.asString();
        else if (key == "benchmark")
            request.benchmark = member.asString();
        else if (key == "workload")
            request.workload = member.asString();
        else if (key == "refrate_repetitions")
            request.refrateRepetitions =
                static_cast<int>(member.asUint(1000));
        else if (key == "include_test")
            request.includeTest = member.asBool();
        else if (key == "jobs")
            request.jobs = static_cast<int>(member.asUint(1024));
        else if (key == "segments")
            request.segments = static_cast<int>(member.asUint(1024));
        else if (key == "segment_warmup_uops")
            request.segmentWarmupUops = member.asUint();
        else if (key == "segment_target_uops")
            request.segmentTargetUops = member.asUint();
        else if (key == "batched")
            request.batched = member.asBool();
        else
            support::fatal("request: unknown key '", key, "'");
    }
    request.validate();
    return request;
}

RunRequest
RunRequest::fromJsonText(std::string_view text)
{
    return fromJson(support::parseJson(text));
}

void
RunRequest::validate() const
{
    const bool known = kind == "characterize" || kind == "suite" ||
                       kind == "report" || kind == "run" ||
                       kind == "metrics";
    support::fatalIf(!known, "request: unknown kind '", kind,
                     "' (expected characterize, suite, report, run, "
                     "or metrics)");
    support::fatalIf((kind == "characterize" || kind == "report" ||
                      kind == "run") &&
                         benchmark.empty(),
                     "request: kind '", kind,
                     "' requires a benchmark");
    support::fatalIf(kind == "run" && workload.empty(),
                     "request: kind 'run' requires a workload");
    support::fatalIf(refrateRepetitions < 1,
                     "request: refrate_repetitions must be >= 1");
    support::fatalIf(jobs < 0 || segments < 0,
                     "request: jobs and segments must be >= 0");
    support::fatalIf(kind == "run" && segments > 1,
                     "request: kind 'run' executes exact "
                     "(segments must be 0 or 1)");
    support::fatalIf(segmentTargetUops == 0,
                     "request: segment_target_uops must be > 0");
}

std::string
RunResult::toJson() const
{
    std::ostringstream os;
    os << "{\"ok\":" << (ok ? "true" : "false")
       << ",\"kind\":" << jsonQuote(kind);
    if (!ok)
        os << ",\"error\":" << jsonQuote(error);
    // The payload goes last and is spliced in verbatim, so clients
    // can recover it byte-identically by slicing the envelope.
    if (ok)
        os << ",\"payload\":" << payload;
    os << '}';
    return os.str();
}

RunResult
RunResult::fromJsonText(std::string_view text)
{
    // Validate the envelope as a whole first — the payload substring
    // below is only trusted because the full line parses.
    const support::JsonValue value = support::parseJson(text);
    RunResult result;
    result.ok = value.at("ok").asBool();
    result.kind = value.at("kind").asString();
    if (const support::JsonValue *error = value.find("error"))
        result.error = error->asString();
    if (!result.ok)
        return result;
    const std::string_view marker = ",\"payload\":";
    const std::size_t at = text.find(marker);
    support::fatalIf(at == std::string_view::npos,
                     "result: missing payload member");
    std::string_view tail = text.substr(at + marker.size());
    while (!tail.empty() &&
           (tail.back() == '\n' || tail.back() == '\r' ||
            tail.back() == ' '))
        tail.remove_suffix(1);
    support::fatalIf(tail.empty() || tail.back() != '}',
                     "result: malformed envelope");
    tail.remove_suffix(1); // the envelope's closing brace
    result.payload = std::string(tail);
    return result;
}

RunResult
execute(const RunRequest &request, runtime::Engine &engine,
        std::vector<Characterization> *rows)
{
    request.validate();
    RunResult result;
    result.kind = request.kind;
    const ReportWriter writer(ReportFormat::Json, &engine);

    if (request.kind == "metrics") {
        result.payload =
            chompPayload(writer.metrics(engine.metricsSnapshot()));
        return result;
    }
    if (request.kind == "run") {
        const auto bm = makeBenchmark(request.benchmark);
        const runtime::Workload workload =
            runtime::findWorkload(*bm, request.workload);
        const runtime::RunMeasurement m =
            request.batched
                ? runtime::measureBatchedExact(*bm, workload,
                                               &engine.cache())
                : runtime::measureCached(*bm, workload,
                                         &engine.cache());
        std::ostringstream os;
        os << "{\"benchmark\":" << jsonQuote(bm->name())
           << ",\"workload\":" << jsonQuote(workload.name)
           << ",\"frontend\":" << jsonNumber(m.topdown.frontend)
           << ",\"backend\":" << jsonNumber(m.topdown.backend)
           << ",\"badspec\":" << jsonNumber(m.topdown.badspec)
           << ",\"retiring\":" << jsonNumber(m.topdown.retiring)
           << ",\"uops\":" << m.retiredOps
           // uint64 checksums exceed JSON's exact-integer range;
           // emit as a string so nothing rounds (as jsonReport does).
           << ",\"checksum\":\"" << m.checksum << "\"}";
        result.payload = os.str();
        engine.metrics().counter("request.runs").add(1);
        return result;
    }

    std::vector<Characterization> characterized;
    if (request.kind == "suite") {
        characterized = characterizeTable2(request, &engine);
        result.payload = chompPayload(writer.table2(characterized));
    } else {
        const auto bm = makeBenchmark(request.benchmark);
        characterized.push_back(
            characterize(*bm, request, &engine));
        result.payload = chompPayload(
            request.kind == "report"
                ? writer.report(characterized.front())
                : writer.table2(characterized));
    }
    if (rows)
        *rows = std::move(characterized);
    return result;
}

} // namespace alberta::core
