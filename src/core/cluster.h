/**
 * @file
 * Workload clustering for sampling — the methodology of Berube et
 * al. (CGO 2009) the paper cites in Section VI: when a development
 * group has too many workloads, cluster them by behaviour and keep
 * one representative per cluster.
 *
 * Workloads are points in top-down-fraction space; clustering is
 * k-medoids with deterministic farthest-point seeding, so the chosen
 * representatives are actual workloads (not synthetic centroids).
 */
#ifndef ALBERTA_CORE_CLUSTER_H
#define ALBERTA_CORE_CLUSTER_H

#include <cstddef>
#include <vector>

#include "core/suite.h"

namespace alberta::core {

/** Result of clustering n points into k groups. */
struct Clustering
{
    /** Indices of the medoid (representative) points, size k. */
    std::vector<std::size_t> medoids;
    /** For each point, the index into @ref medoids it belongs to. */
    std::vector<std::size_t> assignment;
    /** Sum of point-to-medoid distances (the clustering cost). */
    double cost = 0.0;
};

/** L1 distance between two feature vectors of equal length. */
double l1Distance(const std::vector<double> &a,
                  const std::vector<double> &b);

/**
 * k-medoids over arbitrary feature vectors: farthest-point seeding
 * followed by alternating assignment / medoid-update sweeps until a
 * fixed point. Deterministic.
 *
 * @throws support::FatalError when k is 0 or exceeds the point count
 */
Clustering kMedoids(const std::vector<std::vector<double>> &points,
                    std::size_t k);

/** Feature vector of one workload: its four top-down fractions. */
std::vector<double> topdownFeatures(const stats::TopdownRatios &r);

/**
 * Cluster a characterized benchmark's workloads into @p k behaviour
 * groups (Berube-style workload reduction).
 */
Clustering clusterWorkloads(const Characterization &characterization,
                            std::size_t k);

} // namespace alberta::core

#endif // ALBERTA_CORE_CLUSTER_H
