#include "core/cluster.h"

#include <cmath>
#include <limits>

#include "support/check.h"

namespace alberta::core {

double
l1Distance(const std::vector<double> &a, const std::vector<double> &b)
{
    support::panicIf(a.size() != b.size(),
                     "cluster: dimension mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += std::abs(a[i] - b[i]);
    return sum;
}

Clustering
kMedoids(const std::vector<std::vector<double>> &points, std::size_t k)
{
    support::fatalIf(k == 0, "cluster: k must be positive");
    support::fatalIf(k > points.size(), "cluster: k = ", k,
                     " exceeds point count ", points.size());
    const std::size_t n = points.size();

    // Pairwise distances once.
    std::vector<std::vector<double>> dist(n, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            dist[i][j] = dist[j][i] =
                l1Distance(points[i], points[j]);

    Clustering out;
    // Farthest-point seeding from point 0.
    out.medoids.push_back(0);
    while (out.medoids.size() < k) {
        std::size_t best = 0;
        double bestDist = -1.0;
        for (std::size_t p = 0; p < n; ++p) {
            double nearest = std::numeric_limits<double>::max();
            for (const std::size_t m : out.medoids)
                nearest = std::min(nearest, dist[p][m]);
            if (nearest > bestDist) {
                bestDist = nearest;
                best = p;
            }
        }
        out.medoids.push_back(best);
    }

    // Alternate assignment and medoid refinement to a fixed point.
    out.assignment.assign(n, 0);
    for (int round = 0; round < 64; ++round) {
        // Assign every point to its nearest medoid.
        for (std::size_t p = 0; p < n; ++p) {
            double nearest = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < out.medoids.size(); ++c) {
                if (dist[p][out.medoids[c]] < nearest) {
                    nearest = dist[p][out.medoids[c]];
                    out.assignment[p] = c;
                }
            }
        }
        // Recompute each cluster's medoid.
        bool changed = false;
        for (std::size_t c = 0; c < out.medoids.size(); ++c) {
            double bestCost = std::numeric_limits<double>::max();
            std::size_t bestPoint = out.medoids[c];
            for (std::size_t candidate = 0; candidate < n;
                 ++candidate) {
                if (out.assignment[candidate] != c)
                    continue;
                double cost = 0.0;
                for (std::size_t p = 0; p < n; ++p) {
                    if (out.assignment[p] == c)
                        cost += dist[p][candidate];
                }
                if (cost < bestCost) {
                    bestCost = cost;
                    bestPoint = candidate;
                }
            }
            if (bestPoint != out.medoids[c]) {
                out.medoids[c] = bestPoint;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    out.cost = 0.0;
    for (std::size_t p = 0; p < n; ++p)
        out.cost += dist[p][out.medoids[out.assignment[p]]];
    return out;
}

std::vector<double>
topdownFeatures(const stats::TopdownRatios &r)
{
    return {r.frontend, r.backend, r.badspec, r.retiring};
}

Clustering
clusterWorkloads(const Characterization &characterization,
                 std::size_t k)
{
    std::vector<std::vector<double>> points;
    points.reserve(characterization.topdownPerWorkload.size());
    for (const auto &r : characterization.topdownPerWorkload)
        points.push_back(topdownFeatures(r));
    return kMedoids(points, k);
}

} // namespace alberta::core
