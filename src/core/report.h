/**
 * @file
 * Unified output formatting for the characterization pipeline.
 *
 * ReportWriter renders every deliverable — Table II rows, the
 * per-benchmark workload-behaviour report (whose per-workload top-down
 * and coverage series are the Figure 1/2 data), and the end-of-run
 * metrics table — in one of three formats: aligned text, Markdown, or
 * machine-readable JSON. The legacy `table2Row` / `table2Header`
 * helpers are thin wrappers over the same structured fields
 * (@ref table2Fields), so the human and machine outputs can never
 * drift apart.
 */
#ifndef ALBERTA_CORE_REPORT_H
#define ALBERTA_CORE_REPORT_H

#include <string>
#include <string_view>
#include <vector>

#include "core/suite.h"

namespace alberta::core {

/** Output format for @ref ReportWriter. */
enum class ReportFormat
{
    Text,     //!< aligned ASCII tables (the CLI default)
    Markdown, //!< pipe tables / the report document
    Json,     //!< machine-readable JSON
};

/** Parse a `--format` argument: "text", "md", or "json" (fatal
 * otherwise). */
ReportFormat parseReportFormat(std::string_view name);

/** One structured Table II cell: display column, machine key, the
 * formatted text table2Row prints, and the raw value JSON emits. */
struct Table2Field
{
    std::string column; //!< display header, e.g. "f.mu_g"
    std::string key;    //!< machine key, e.g. "frontend_mu_g_percent"
    std::string text;   //!< formatted cell
    double number = 0.0; //!< raw value (numeric fields)
    bool numeric = true; //!< false: JSON emits @ref text as a string
};

/** The structured Table II row @ref table2Row / @ref table2Header
 * wrap. */
std::vector<Table2Field> table2Fields(const Characterization &c);

/**
 * Format-aware renderer for every pipeline deliverable. When
 * constructed with an engine, each render is traced as one span
 * (category "report") through the engine's tracer.
 */
class ReportWriter
{
  public:
    explicit ReportWriter(ReportFormat format = ReportFormat::Text,
                          runtime::Engine *engine = nullptr)
        : format_(format), engine_(engine)
    {
    }

    ReportFormat format() const { return format_; }

    /** Table II rows for @p rows (one per characterized benchmark). */
    std::string
    table2(const std::vector<Characterization> &rows) const;

    /**
     * The full per-benchmark report. Text and Markdown render the
     * workload-behaviour document; JSON emits the complete
     * characterization — per-workload top-down fractions (Figure 1
     * data), the method-coverage matrix (Figure 2 data), summaries,
     * and refrate timings.
     */
    std::string report(const Characterization &c) const;

    /** The end-of-run metrics table (see Engine::metricsSnapshot). */
    std::string
    metrics(const std::vector<obs::MetricSample> &samples) const;

  private:
    ReportFormat format_;
    runtime::Engine *engine_;
};

/**
 * Render a full Markdown report for one characterized benchmark —
 * equivalent to `ReportWriter(ReportFormat::Markdown).report(c)`.
 */
std::string renderReport(const Characterization &characterization);

} // namespace alberta::core

#endif // ALBERTA_CORE_REPORT_H
