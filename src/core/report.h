/**
 * @file
 * Per-benchmark report generation: the textual analogue of the
 * "individual benchmark reports distributed with the Alberta
 * Workloads" — per-workload execution times, top-down fractions,
 * method-coverage tables, and the Section V summaries, as Markdown.
 */
#ifndef ALBERTA_CORE_REPORT_H
#define ALBERTA_CORE_REPORT_H

#include <string>

#include "core/suite.h"

namespace alberta::core {

/**
 * Render a full Markdown report for one characterized benchmark:
 * header and metadata, a per-workload measurement table, the method-
 * coverage matrix, and the mu_g(V) / mu_g(M) summary with the
 * small-mean caveat flagged when it applies.
 */
std::string renderReport(const Characterization &characterization);

} // namespace alberta::core

#endif // ALBERTA_CORE_REPORT_H
