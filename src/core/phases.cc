#include "core/phases.h"

#include <cmath>

#include "core/cluster.h"
#include "support/check.h"

namespace alberta::core {

double
behaviourDistance(const stats::TopdownRatios &a,
                  const stats::TopdownRatios &b)
{
    return std::abs(a.frontend - b.frontend) +
           std::abs(a.backend - b.backend) +
           std::abs(a.badspec - b.badspec) +
           std::abs(a.retiring - b.retiring);
}

namespace {

stats::TopdownRatios
ratiosOf(const topdown::SlotCounts &slots)
{
    stats::TopdownRatios r;
    const double total = slots.total();
    if (total <= 0.0)
        return r;
    r.frontend = slots.frontend / total;
    r.backend = slots.backend / total;
    r.badspec = slots.badspec / total;
    r.retiring = slots.retiring / total;
    return r;
}

} // namespace

PhaseAnalysis
analyzePhases(const runtime::Benchmark &benchmark,
              const runtime::Workload &workload, int targetIntervals)
{
    support::fatalIf(targetIntervals < 2,
                     "phases: need at least two intervals");

    // Sizing run: how many uops does this workload retire?
    const auto sizing = runtime::runOnce(benchmark, workload);
    const std::uint64_t perInterval =
        std::max<std::uint64_t>(1000,
                                sizing.retiredOps /
                                    targetIntervals);

    // Recorded run.
    runtime::ExecutionContext context;
    context.machine().recordIntervals(perInterval);
    benchmark.run(workload, context);

    PhaseAnalysis out;
    out.fullRun = context.machine().ratios();
    const auto &intervals = context.machine().intervals();
    support::fatalIf(intervals.size() < 2,
                     "phases: run too short for interval analysis");

    std::vector<std::vector<double>> points;
    for (const auto &slots : intervals) {
        const auto r = ratiosOf(slots);
        out.intervalRatios.push_back(r);
        points.push_back(topdownFeatures(r));
    }

    const Clustering clustering = kMedoids(points, 1);
    out.representative = clustering.medoids[0];
    out.representativeRatios =
        out.intervalRatios[out.representative];
    out.selfError =
        behaviourDistance(out.representativeRatios, out.fullRun);
    return out;
}

} // namespace alberta::core
