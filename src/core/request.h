/**
 * @file
 * The first-class request API: one serializable RunRequest/RunResult
 * pair is the single public way to specify and deliver a
 * characterization run.
 *
 * Every entry point — `alberta_cli`, the `alberta_serve` daemon, the
 * bench harnesses, and tests — constructs a RunRequest instead of
 * poking fields on ad-hoc option structs, and the pair round-trips
 * through JSON (via support::json), so the exact run a client asked
 * for over the wire is the exact run the CLI would perform locally:
 *
 * @code
 *   core::RunRequest request;
 *   request.kind = "suite";
 *   request.segments = 0; // auto
 *   core::RunResult result = core::execute(request, engine);
 *   std::cout << result.payload << "\n"; // Table II JSON
 * @endcode
 *
 * RunResult::payload carries the rendered JSON deliverable verbatim
 * (no trailing newline); RunResult::toJson() embeds it unmodified as
 * the envelope's last member, so a served payload is byte-identical
 * to the CLI's `--format json` output for the same request and cache.
 */
#ifndef ALBERTA_CORE_REQUEST_H
#define ALBERTA_CORE_REQUEST_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/segment.h"
#include "support/json.h"

namespace alberta::runtime {
class Engine;
} // namespace alberta::runtime

namespace alberta::core {

struct Characterization;

/**
 * A fully serializable run specification: what to run (kind,
 * benchmark, workload) plus the model configuration (repetitions,
 * segmentation, batching). This is the payload the daemon accepts
 * over its socket and the options block every in-process entry point
 * takes; see @ref execute for the kinds.
 */
struct RunRequest
{
    /** "characterize" | "suite" | "report" | "run" | "metrics". */
    std::string kind = "characterize";
    /** Benchmark id (required for characterize/report/run). */
    std::string benchmark;
    /** Workload name (required for kind "run"). */
    std::string workload;
    /** Timed refrate repetitions (the paper's three). */
    int refrateRepetitions = 3;
    /** Count "test" among the characterized workloads. */
    bool includeTest = true;
    /**
     * Worker threads when no Engine is supplied to characterize():
     * 1 = serial, 0 = runtime::Executor::defaultJobs(), N > 1 = a
     * local pool of N. Ignored when an Engine is given (the daemon
     * always runs requests through its shared engine's pool).
     */
    int jobs = 1;
    /**
     * Checkpoint-and-splice segments per model run: 1 = exact,
     * 0 = auto (by uop estimate), N > 1 = force N. Spliced fractions
     * are within 1e-3 of exact (pinned by test); checksums exact.
     */
    int segments = 1;
    /** Warm-up uops replayed ahead of each segment. */
    std::uint64_t segmentWarmupUops =
        runtime::kDefaultSegmentWarmupUops;
    /** Auto segmentation aims for about this many uops/segment. */
    std::uint64_t segmentTargetUops = 16'000'000;
    /** Route untimed model runs through the trace-backed
     * batched-exact path (bit-identical, shared cache keys). */
    bool batched = false;

    /** This request as one JSON object (round-trips via fromJson). */
    std::string toJson() const;

    /** Parse from a JSON object; unknown keys and ill-typed values
     * are fatal, absent keys keep their defaults. */
    static RunRequest fromJson(const support::JsonValue &value);

    /** @ref fromJson over parsed @p text. */
    static RunRequest fromJsonText(std::string_view text);

    /** Raise FatalError unless the request is executable (known
     * kind, required names present, numeric ranges sane). */
    void validate() const;
};

/**
 * The rendered deliverable for one executed RunRequest. `payload` is
 * the JSON document the request's kind produces — a Table II row
 * array, a full report object, a single-workload measurement, or the
 * metrics table — without a trailing newline. Deterministic model
 * outputs only, except refrate timings which are part of Table II by
 * construction (and replay bit-identically from a shared cache).
 */
struct RunResult
{
    bool ok = true;
    std::string kind;    //!< echoes RunRequest::kind
    std::string error;   //!< set when !ok (payload empty)
    std::string payload; //!< verbatim JSON deliverable

    /**
     * The wire form: `{"ok":...,"kind":...,"payload":...}` with the
     * payload embedded verbatim as the last member (or an "error"
     * member instead when !ok).
     */
    std::string toJson() const;

    /**
     * Parse a wire-form result. The payload is recovered
     * byte-identically (it is extracted as the envelope's trailing
     * member, then validated as JSON — never re-encoded).
     */
    static RunResult fromJsonText(std::string_view text);
};

/**
 * Execute @p request through @p engine and render its deliverable.
 *
 * Kinds:
 *   - "characterize": one benchmark's Table II row (JSON array of 1)
 *   - "suite": the full Table II through the suite scheduler
 *   - "report": one benchmark's complete characterization object
 *   - "run": one (benchmark, workload) model run — deterministic
 *     outputs only (top-down fractions, uops, checksum)
 *   - "metrics": the engine's metrics snapshot
 *
 * When @p rows is non-null the characterized rows are copied out for
 * programmatic consumers (the CLI's text/Markdown formats).
 *
 * Raises support::FatalError on an invalid request (unknown kind or
 * benchmark, bad ranges); the daemon converts that into an error
 * response, the CLI into a usage error — identical diagnostics.
 */
RunResult execute(const RunRequest &request, runtime::Engine &engine,
                  std::vector<Characterization> *rows = nullptr);

} // namespace alberta::core

#endif // ALBERTA_CORE_REQUEST_H
