/**
 * @file
 * Kernel/phase representativeness analysis — the Section VII research
 * question: "it would be nice to know if kernels created from SPEC
 * benchmark suites to allow faster simulation actually represent the
 * range of behaviours of the benchmarks when they are executed with
 * multiple workloads."
 *
 * A run is sliced into equal-retired-uop intervals (SimPoint-style);
 * the medoid interval is the simulation kernel. The analysis then
 * measures how far that kernel's behaviour sits from the full run of
 * each workload.
 */
#ifndef ALBERTA_CORE_PHASES_H
#define ALBERTA_CORE_PHASES_H

#include "core/suite.h"

namespace alberta::core {

/** Phase decomposition of one (benchmark, workload) execution. */
struct PhaseAnalysis
{
    /** Top-down fractions of each completed interval. */
    std::vector<stats::TopdownRatios> intervalRatios;
    /** Index of the medoid (most representative) interval. */
    std::size_t representative = 0;
    /** The kernel's behaviour vector. */
    stats::TopdownRatios representativeRatios;
    /** Whole-run behaviour vector. */
    stats::TopdownRatios fullRun;
    /** L1 distance between kernel and full run (same workload). */
    double selfError = 0.0;
};

/**
 * Execute @p workload recording ~@p targetIntervals equal-sized
 * intervals and pick the medoid as the simulation kernel.
 *
 * @throws support::FatalError if the run is too short to form at
 *         least two intervals
 */
PhaseAnalysis analyzePhases(const runtime::Benchmark &benchmark,
                            const runtime::Workload &workload,
                            int targetIntervals = 12);

/** L1 distance between two top-down behaviour vectors. */
double behaviourDistance(const stats::TopdownRatios &a,
                         const stats::TopdownRatios &b);

} // namespace alberta::core

#endif // ALBERTA_CORE_PHASES_H
