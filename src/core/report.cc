#include "core/report.h"

#include <sstream>

#include "support/check.h"
#include "support/json.h"
#include "support/table.h"

namespace alberta::core {

namespace {

using support::formatFixed;
using support::formatPercent;
using support::jsonNumber;
using support::jsonQuote;

/** Render header+rows as a Markdown pipe table. */
std::string
pipeTable(const std::vector<std::string> &header,
          const std::vector<std::vector<std::string>> &rows)
{
    std::ostringstream os;
    os << '|';
    for (const auto &cell : header)
        os << ' ' << cell << " |";
    os << "\n|";
    for (std::size_t i = 0; i < header.size(); ++i)
        os << "---|";
    os << '\n';
    for (const auto &row : rows) {
        os << '|';
        for (const auto &cell : row)
            os << ' ' << cell << " |";
        os << '\n';
    }
    return os.str();
}

/** Render header+rows as an aligned text table. */
std::string
textTable(const std::vector<std::string> &header,
          const std::vector<std::vector<std::string>> &rows)
{
    support::Table table(header);
    for (const auto &row : rows)
        table.addRow(row);
    std::ostringstream os;
    table.print(os);
    return os.str();
}

/** The Markdown workload-behaviour document (the historical
 * renderReport body; text format reuses it verbatim). */
std::string
markdownReport(const Characterization &c)
{
    std::ostringstream os;

    os << "# " << c.benchmark << " — workload behaviour report\n\n";
    os << "Application area: " << c.area << "\n\n";
    os << "Workloads characterized: " << c.workloadNames.size()
       << "\n";
    if (!c.refrateRuns.empty()) {
        os << "refrate time: " << formatFixed(c.refrateSeconds, 3)
           << " s (mean of " << c.refrateRuns.size() << " runs:";
        for (const double t : c.refrateRuns)
            os << ' ' << formatFixed(t, 3);
        os << ")\n";
    }

    os << "\n## Per-workload top-down fractions\n\n";
    os << "| workload | front-end | back-end | bad-spec | retiring "
          "|\n";
    os << "|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        const auto &r = c.topdownPerWorkload[i];
        os << "| " << c.workloadNames[i] << " | "
           << formatPercent(r.frontend, 1) << "% | "
           << formatPercent(r.backend, 1) << "% | "
           << formatPercent(r.badspec, 1) << "% | "
           << formatPercent(r.retiring, 1) << "% |\n";
    }

    os << "\n## Method coverage (percent of execution)\n\n";
    os << "| workload |";
    for (const auto &method : c.coverage.methods)
        os << ' ' << method << " |";
    os << "\n|---|";
    for (std::size_t j = 0; j < c.coverage.methods.size(); ++j)
        os << "---|";
    os << "\n";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        os << "| " << c.workloadNames[i] << " |";
        for (std::size_t j = 0; j < c.coverage.methods.size(); ++j)
            os << ' ' << formatFixed(c.coverage.matrix[i][j], 1)
               << " |";
        os << "\n";
    }

    os << "\n## Section V summaries\n\n";
    os << "| category | mu_g | sigma_g | V |\n|---|---|---|---|\n";
    const auto row = [&](const char *name,
                         const stats::GeoSummary &s) {
        os << "| " << name << " | " << formatPercent(s.mean, 2)
           << "% | " << formatFixed(s.stddev, 2) << " | "
           << formatFixed(s.variation, 2) << " |\n";
    };
    row("front-end bound", c.topdown.frontend);
    row("back-end bound", c.topdown.backend);
    row("bad speculation", c.topdown.badspec);
    row("retiring", c.topdown.retiring);

    os << "\n- mu_g(V) = " << formatFixed(c.topdown.muGV, 2) << "\n";
    os << "- mu_g(M) = " << formatFixed(c.coverage.muGM, 2) << "\n";
    if (c.topdown.badspec.mean < 0.005 ||
        c.topdown.frontend.mean < 0.005) {
        os << "\n> **Caveat (paper, Section V-B):** a category's "
              "geometric mean is close to\n> zero, so mu_g(V) is "
              "inflated by the small-mean pathology; do not compare "
              "it\n> against other benchmarks without looking into "
              "the data.\n";
    }
    return os.str();
}

/** The complete characterization as one JSON object: Table II
 * summaries plus the Figure 1 (top-down) and Figure 2 (coverage)
 * per-workload series. */
std::string
jsonReport(const Characterization &c)
{
    std::ostringstream os;
    os << "{\"benchmark\":" << jsonQuote(c.benchmark)
       << ",\"area\":" << jsonQuote(c.area);

    os << ",\"workloads\":[";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        const auto &r = c.topdownPerWorkload[i];
        if (i)
            os << ',';
        os << "{\"name\":" << jsonQuote(c.workloadNames[i])
           << ",\"frontend\":" << jsonNumber(r.frontend)
           << ",\"backend\":" << jsonNumber(r.backend)
           << ",\"badspec\":" << jsonNumber(r.badspec)
           << ",\"retiring\":" << jsonNumber(r.retiring)
           // uint64 checksums exceed JSON's exact-integer range;
           // emit as strings so nothing rounds.
           << ",\"checksum\":\"" << c.checksumPerWorkload[i]
           << "\"}";
    }
    os << ']';

    os << ",\"coverage\":{\"methods\":[";
    for (std::size_t j = 0; j < c.coverage.methods.size(); ++j) {
        if (j)
            os << ',';
        os << jsonQuote(c.coverage.methods[j]);
    }
    os << "],\"matrix\":[";
    for (std::size_t i = 0; i < c.coverage.matrix.size(); ++i) {
        if (i)
            os << ',';
        os << '[';
        for (std::size_t j = 0; j < c.coverage.matrix[i].size();
             ++j) {
            if (j)
                os << ',';
            os << jsonNumber(c.coverage.matrix[i][j]);
        }
        os << ']';
    }
    os << "],\"mu_g_m\":" << jsonNumber(c.coverage.muGM) << '}';

    const auto summary = [&](const char *name,
                             const stats::GeoSummary &s) {
        os << ',' << jsonQuote(name) << ":{\"mu_g\":"
           << jsonNumber(s.mean)
           << ",\"sigma_g\":" << jsonNumber(s.stddev)
           << ",\"variation\":" << jsonNumber(s.variation) << '}';
    };
    summary("frontend", c.topdown.frontend);
    summary("backend", c.topdown.backend);
    summary("badspec", c.topdown.badspec);
    summary("retiring", c.topdown.retiring);
    os << ",\"mu_g_v\":" << jsonNumber(c.topdown.muGV);

    os << ",\"refrate_seconds\":" << jsonNumber(c.refrateSeconds)
       << ",\"refrate_runs\":[";
    for (std::size_t i = 0; i < c.refrateRuns.size(); ++i) {
        if (i)
            os << ',';
        os << jsonNumber(c.refrateRuns[i]);
    }
    os << "]}\n";
    return os.str();
}

/** One Table II row as a JSON object keyed by Table2Field::key. */
std::string
jsonTable2Row(const Characterization &c)
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const Table2Field &f : table2Fields(c)) {
        if (!first)
            os << ',';
        first = false;
        os << jsonQuote(f.key) << ':';
        if (f.numeric)
            os << jsonNumber(f.number);
        else
            os << jsonQuote(f.text);
    }
    os << '}';
    return os.str();
}

} // namespace

ReportFormat
parseReportFormat(std::string_view name)
{
    if (name == "text")
        return ReportFormat::Text;
    if (name == "md" || name == "markdown")
        return ReportFormat::Markdown;
    if (name == "json")
        return ReportFormat::Json;
    support::fatal("report: unknown format '", std::string(name),
                   "' (expected text, md, or json)");
}

std::vector<Table2Field>
table2Fields(const Characterization &c)
{
    std::vector<Table2Field> fields;
    const auto text = [&](std::string column, std::string key,
                          std::string value) {
        fields.push_back(
            {std::move(column), std::move(key), std::move(value), 0.0,
             false});
    };
    const auto number = [&](std::string column, std::string key,
                            std::string cell, double raw) {
        fields.push_back({std::move(column), std::move(key),
                          std::move(cell), raw, true});
    };
    const auto geo = [&](const char *prefix, const char *keyStem,
                         const stats::GeoSummary &s) {
        number(std::string(prefix) + ".mu_g",
               std::string(keyStem) + "_mu_g_percent",
               formatPercent(s.mean, 1), s.mean * 100.0);
        number(std::string(prefix) + ".sg",
               std::string(keyStem) + "_sigma_g",
               formatFixed(s.stddev, 1), s.stddev);
    };

    text("Benchmark", "benchmark", c.benchmark);
    number("#wl", "workloads",
           std::to_string(c.workloadNames.size()),
           static_cast<double>(c.workloadNames.size()));
    geo("f", "frontend", c.topdown.frontend);
    geo("b", "backend", c.topdown.backend);
    geo("s", "badspec", c.topdown.badspec);
    geo("r", "retiring", c.topdown.retiring);
    number("mu_g(V)", "mu_g_v", formatFixed(c.topdown.muGV, 1),
           c.topdown.muGV);
    number("mu_g(M)", "mu_g_m", formatFixed(c.coverage.muGM, 2),
           c.coverage.muGM);
    number("refrate(s)", "refrate_seconds",
           formatFixed(c.refrateSeconds, 2), c.refrateSeconds);
    return fields;
}

std::string
ReportWriter::table2(const std::vector<Characterization> &rows) const
{
    obs::Span span(engine_ ? &engine_->tracer() : nullptr, "table2",
                   "report");
    span.note("rows", static_cast<std::uint64_t>(rows.size()));

    if (format_ == ReportFormat::Json) {
        std::ostringstream os;
        os << '[';
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i)
                os << ',';
            os << jsonTable2Row(rows[i]);
        }
        os << "]\n";
        return os.str();
    }
    std::vector<std::vector<std::string>> cells;
    for (const auto &c : rows)
        cells.push_back(table2Row(c));
    return format_ == ReportFormat::Markdown
               ? pipeTable(table2Header(), cells)
               : textTable(table2Header(), cells);
}

std::string
ReportWriter::report(const Characterization &c) const
{
    obs::Span span(engine_ ? &engine_->tracer() : nullptr, "report",
                   "report");
    span.note("benchmark", c.benchmark);
    return format_ == ReportFormat::Json ? jsonReport(c)
                                         : markdownReport(c);
}

std::string
ReportWriter::metrics(
    const std::vector<obs::MetricSample> &samples) const
{
    obs::Span span(engine_ ? &engine_->tracer() : nullptr, "metrics",
                   "report");
    span.note("samples", static_cast<std::uint64_t>(samples.size()));

    if (format_ == ReportFormat::Json) {
        std::ostringstream os;
        os << '[';
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const auto &s = samples[i];
            if (i)
                os << ',';
            os << "{\"name\":" << jsonQuote(s.name)
               << ",\"kind\":" << jsonQuote(s.kind)
               << ",\"value\":" << jsonNumber(s.value);
            if (s.kind == "histogram") {
                os << ",\"count\":" << s.count
                   << ",\"sum\":" << jsonNumber(s.sum)
                   << ",\"min\":" << jsonNumber(s.min)
                   << ",\"max\":" << jsonNumber(s.max);
            }
            os << '}';
        }
        os << "]\n";
        return os.str();
    }

    const std::vector<std::string> header = {"metric", "kind",
                                             "value", "detail"};
    std::vector<std::vector<std::string>> cells;
    for (const auto &s : samples) {
        std::string detail;
        if (s.kind == "histogram") {
            detail = "n=" + std::to_string(s.count) +
                     " min=" + formatFixed(s.min, 6) +
                     " max=" + formatFixed(s.max, 6) +
                     " sum=" + formatFixed(s.sum, 6);
        }
        cells.push_back({s.name, s.kind, formatFixed(s.value, 6),
                         std::move(detail)});
    }
    return format_ == ReportFormat::Markdown
               ? pipeTable(header, cells)
               : textTable(header, cells);
}

std::string
renderReport(const Characterization &c)
{
    return ReportWriter(ReportFormat::Markdown).report(c);
}

} // namespace alberta::core
