#include "core/report.h"

#include <sstream>

#include "support/table.h"

namespace alberta::core {

std::string
renderReport(const Characterization &c)
{
    using support::formatFixed;
    using support::formatPercent;
    std::ostringstream os;

    os << "# " << c.benchmark << " — workload behaviour report\n\n";
    os << "Application area: " << c.area << "\n\n";
    os << "Workloads characterized: " << c.workloadNames.size()
       << "\n";
    if (!c.refrateRuns.empty()) {
        os << "refrate time: " << formatFixed(c.refrateSeconds, 3)
           << " s (mean of " << c.refrateRuns.size() << " runs:";
        for (const double t : c.refrateRuns)
            os << ' ' << formatFixed(t, 3);
        os << ")\n";
    }

    os << "\n## Per-workload top-down fractions\n\n";
    os << "| workload | front-end | back-end | bad-spec | retiring "
          "|\n";
    os << "|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        const auto &r = c.topdownPerWorkload[i];
        os << "| " << c.workloadNames[i] << " | "
           << formatPercent(r.frontend, 1) << "% | "
           << formatPercent(r.backend, 1) << "% | "
           << formatPercent(r.badspec, 1) << "% | "
           << formatPercent(r.retiring, 1) << "% |\n";
    }

    os << "\n## Method coverage (percent of execution)\n\n";
    os << "| workload |";
    for (const auto &method : c.coverage.methods)
        os << ' ' << method << " |";
    os << "\n|---|";
    for (std::size_t j = 0; j < c.coverage.methods.size(); ++j)
        os << "---|";
    os << "\n";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        os << "| " << c.workloadNames[i] << " |";
        for (std::size_t j = 0; j < c.coverage.methods.size(); ++j)
            os << ' ' << formatFixed(c.coverage.matrix[i][j], 1)
               << " |";
        os << "\n";
    }

    os << "\n## Section V summaries\n\n";
    os << "| category | mu_g | sigma_g | V |\n|---|---|---|---|\n";
    const auto row = [&](const char *name,
                         const stats::GeoSummary &s) {
        os << "| " << name << " | " << formatPercent(s.mean, 2)
           << "% | " << formatFixed(s.stddev, 2) << " | "
           << formatFixed(s.variation, 2) << " |\n";
    };
    row("front-end bound", c.topdown.frontend);
    row("back-end bound", c.topdown.backend);
    row("bad speculation", c.topdown.badspec);
    row("retiring", c.topdown.retiring);

    os << "\n- mu_g(V) = " << formatFixed(c.topdown.muGV, 2) << "\n";
    os << "- mu_g(M) = " << formatFixed(c.coverage.muGM, 2) << "\n";
    if (c.topdown.badspec.mean < 0.005 ||
        c.topdown.frontend.mean < 0.005) {
        os << "\n> **Caveat (paper, Section V-B):** a category's "
              "geometric mean is close to\n> zero, so mu_g(V) is "
              "inflated by the small-mean pathology; do not compare "
              "it\n> against other benchmarks without looking into "
              "the data.\n";
    }
    return os.str();
}

} // namespace alberta::core
