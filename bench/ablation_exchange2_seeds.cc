/**
 * @file
 * Ablation D: the 548.exchange2_r seed-sensitivity finding
 * (Section IV-A) — fresh seed collections made the benchmark run too
 * short even at maximum generator difficulty, so the Alberta
 * workloads reuse the 27 distributed seeds. This bench compares
 * search effort (solver nodes) for seed collections of varying clue
 * counts against the distributed set.
 */
#include <iostream>
#include <sstream>

#include "benchmarks/exchange2/benchmark.h"
#include "benchmarks/exchange2/sudoku.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/text.h"

int
main()
{
    using namespace alberta;
    using namespace alberta::exchange2;

    std::cout << "Ablation D (548.exchange2_r): seed difficulty vs "
                 "run length.\nEach row: 9 seed puzzles, 4 generated "
                 "puzzles per seed; work = solver nodes.\n\n";

    support::Table table({"seed collection", "mean clues",
                          "total nodes", "nodes/puzzle"});

    runtime::ExecutionContext scratch;
    const auto measure = [&](const std::string &label,
                             const std::vector<Grid> &seeds) {
        support::Rng rng(0xD0D0);
        std::uint64_t nodes = 0;
        int puzzles = 0;
        int clues = 0;
        for (const Grid &seed : seeds) {
            clues += seed.clues();
            for (int p = 0; p < 4; ++p) {
                const Grid puzzle = transformPuzzle(seed, rng);
                runtime::ExecutionContext ctx;
                nodes += solve(puzzle, ctx, 2).nodes;
                ++puzzles;
            }
        }
        table.addRow(
            {label,
             support::formatFixed(
                 static_cast<double>(clues) / seeds.size(), 1),
             std::to_string(nodes),
             support::formatFixed(
                 static_cast<double>(nodes) / puzzles, 0)});
    };

    // Fresh collections at several difficulty targets.
    for (const int target : {45, 36, 30}) {
        std::vector<Grid> seeds;
        support::Rng rng(1000 + target);
        for (int i = 0; i < 9; ++i) {
            support::Rng child = rng.fork(i + 1);
            seeds.push_back(
                createSeedPuzzle(child, target, scratch));
        }
        measure("fresh, target " + std::to_string(target) + " clues",
                seeds);
    }

    // The distributed 27-seed collection (first 9 seeds).
    {
        std::vector<Grid> seeds;
        const auto lines = support::splitWhitespace(
            Exchange2Benchmark::distributedSeeds());
        for (int i = 0; i < 9; ++i)
            seeds.push_back(Grid::parse(lines[i]));
        measure("distributed (benchmark seeds)", seeds);
    }

    table.print(std::cout);
    std::cout << "\nExpected shape: more clues -> fewer search nodes "
                 "(too-short runs); the\ndistributed seeds sustain "
                 "the largest search effort.\n";
    return 0;
}
