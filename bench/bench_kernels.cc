/**
 * @file
 * google-benchmark microbenchmarks of the substrate kernels: raw
 * throughput of the pieces everything else is built on. Useful for
 * spotting performance regressions in the simulator itself (the
 * "seconds" columns of Tables I/II depend on these).
 */
#include <benchmark/benchmark.h>

#include "benchmarks/deepsjeng/board.h"
#include "benchmarks/exchange2/benchmark.h"
#include "benchmarks/exchange2/sudoku.h"
#include "benchmarks/lbm/benchmark.h"
#include "benchmarks/mcf/generator.h"
#include "benchmarks/mcf/mincost.h"
#include "benchmarks/xz/generator.h"
#include "benchmarks/xz/lz77.h"
#include "runtime/context.h"
#include "stats/summary.h"
#include "support/text.h"
#include "topdown/machine.h"

namespace {

using namespace alberta;

void
BM_TopdownMachineOps(benchmark::State &state)
{
    topdown::Machine machine;
    machine.setMethod(1, 4096);
    std::uint64_t rngState = 1;
    for (auto _ : state) {
        const auto r = support::splitmix64(rngState);
        machine.branch(1, r & 1);
        machine.load(r % (1 << 22));
        machine.ops(topdown::OpKind::IntAlu, 4);
    }
    state.SetItemsProcessed(state.iterations() * 6);
}
BENCHMARK(BM_TopdownMachineOps);

void
BM_CacheAccess(benchmark::State &state)
{
    topdown::Cache cache(32 * 1024, 8, 64);
    std::uint64_t rngState = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(support::splitmix64(rngState) %
                         (1 << 20)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_Lz77Compress(benchmark::State &state)
{
    xz::FileConfig cfg;
    cfg.kind = xz::ContentKind::Log;
    cfg.bytes = static_cast<std::size_t>(state.range(0));
    const auto data = xz::generateFile(cfg);
    for (auto _ : state) {
        runtime::ExecutionContext ctx;
        benchmark::DoNotOptimize(xz::compress(data, {}, ctx));
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Lz77Compress)->Arg(64 << 10)->Arg(256 << 10);

void
BM_ChessPerft(benchmark::State &state)
{
    deepsjeng::Board board = deepsjeng::Board::initial();
    for (auto _ : state)
        benchmark::DoNotOptimize(board.perft(
            static_cast<int>(state.range(0))));
}
BENCHMARK(BM_ChessPerft)->Arg(3)->Arg(4);

void
BM_SudokuSolve(benchmark::State &state)
{
    const auto lines = support::splitWhitespace(
        exchange2::Exchange2Benchmark::distributedSeeds());
    const auto grid = exchange2::Grid::parse(lines[0]);
    for (auto _ : state) {
        runtime::ExecutionContext ctx;
        benchmark::DoNotOptimize(exchange2::solve(grid, ctx, 2));
    }
}
BENCHMARK(BM_SudokuSolve);

void
BM_McfSolve(benchmark::State &state)
{
    mcf::CityConfig cfg;
    cfg.seed = 7;
    cfg.trips = static_cast<int>(state.range(0));
    const auto problem = mcf::generateCity(cfg);
    for (auto _ : state) {
        runtime::ExecutionContext ctx;
        mcf::Solver solver(problem.instance);
        benchmark::DoNotOptimize(solver.solve(ctx));
    }
}
BENCHMARK(BM_McfSolve)->Arg(40)->Arg(80);

void
BM_LbmStep(benchmark::State &state)
{
    lbm::GeometryConfig geo;
    geo.seed = 3;
    const auto geometry = lbm::generateGeometry(geo);
    for (auto _ : state) {
        runtime::ExecutionContext ctx;
        lbm::LbmConfig cfg;
        cfg.steps = 1;
        lbm::Lattice lattice(geometry, cfg);
        benchmark::DoNotOptimize(lattice.run(ctx));
    }
    state.SetItemsProcessed(state.iterations() * geo.nx * geo.ny *
                            geo.nz);
}
BENCHMARK(BM_LbmStep);

void
BM_SummarizeCoverage(benchmark::State &state)
{
    std::vector<stats::CoverageMap> workloads(12);
    std::uint64_t rngState = 5;
    for (auto &w : workloads) {
        double left = 1.0;
        for (int mth = 0; mth < 30; ++mth) {
            const double f =
                left *
                (support::splitmix64(rngState) % 100) / 400.0;
            w["m" + std::to_string(mth)] = f;
            left -= f;
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::summarizeCoverage(workloads));
}
BENCHMARK(BM_SummarizeCoverage);

} // namespace

BENCHMARK_MAIN();
