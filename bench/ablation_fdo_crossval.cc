/**
 * @file
 * Ablation B: the paper's motivating methodology experiment
 * (Sections I and VII). For several benchmarks, train FDO on the
 * SPEC "train" workload, then compare:
 *   - the self estimate (evaluate on the training workload — the
 *     degenerate train==eval practice the paper criticizes),
 *   - the classic single-eval estimate (train -> refrate), and
 *   - the cross-validated distribution over all Alberta workloads.
 * Expected shape: self >= classic estimate >= cross-validated mean,
 * with per-benchmark spread correlating with workload sensitivity.
 */
#include <iostream>

#include "core/suite.h"
#include "fdo/fdo.h"
#include "support/table.h"

int
main()
{
    using namespace alberta;

    std::cout << "Ablation B: FDO speedup estimates — single-train "
                 "methodology vs cross-validation.\n\n";

    support::Table table({"Benchmark", "self(train=eval)",
                          "train->refrate", "crossval geomean",
                          "crossval min", "crossval max",
                          "overstatement"});

    runtime::Engine engine;
    fdo::CrossValidateOptions options;
    options.engine = &engine;
    for (const char *name :
         {"505.mcf_r", "557.xz_r", "531.deepsjeng_r",
          "523.xalancbmk_r", "520.omnetpp_r", "548.exchange2_r"}) {
        const auto bm = core::makeBenchmark(name);
        const fdo::CrossValidation cv =
            fdo::crossValidate(*bm, "train", options);
        table.addRow(
            {name, support::formatFixed(cv.selfSpeedup, 4),
             support::formatFixed(cv.refSpeedup, 4),
             support::formatFixed(cv.meanCross, 4),
             support::formatFixed(cv.minCross, 4),
             support::formatFixed(cv.maxCross, 4),
             support::formatFixed(cv.selfSpeedup / cv.meanCross,
                                  4)});
        std::cerr << "  [fdo] " << name << " done\n";
    }
    table.print(std::cout);
    std::cout << "\n'overstatement' = self speedup / cross-validated "
                 "geomean: > 1 means the\ntrain==eval methodology "
                 "overstates the benefit FDO delivers on unseen "
                 "workloads.\n";
    return 0;
}
