/**
 * @file
 * Reproduces Table II: for each of the paper's 15 benchmarks, the
 * workload count, geometric mean and geometric standard deviation of
 * the four top-down categories (f, b, s, r), the proportional-
 * variation summary mu_g(V) (Eq. 4), the method-coverage summary
 * mu_g(M) (Eq. 5), and the mean refrate time over three runs.
 *
 * Reproduction target (see EXPERIMENTS.md): the *shape* — which
 * benchmarks are workload-sensitive, the small-mean bad-speculation
 * inflation for lbm/cactuBSSN, and the coverage-variation ordering —
 * not the absolute hardware values.
 *
 * The suite is characterized three times to exercise and track the
 * parallel execution engine:
 *
 *   1. serial baseline        (jobs=1, no result cache)
 *   2. parallel, cold cache   (--jobs pool, empty cache)
 *   3. parallel, warm cache   (same pool, memoized results)
 *
 * Model outputs must be bit-identical across all three; wall times and
 * the derived speedups are written to BENCH_table2.json so the engine's
 * performance is tracked across PRs.
 *
 *   bench_table2 [--jobs N] [--json PATH]
 */
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/suite.h"
#include "support/table.h"

namespace {

using namespace alberta;

/** One full-suite characterization; returns rows in Table II order. */
std::vector<core::Characterization>
characterizeSuite(const core::CharacterizeOptions &options,
                  const char *label)
{
    std::vector<core::Characterization> out;
    for (const auto &name : core::table2Names()) {
        const auto bm = core::makeBenchmark(name);
        out.push_back(core::characterize(*bm, options));
        std::cerr << "  [table2:" << label << "] " << name << " done ("
                  << out.back().workloadNames.size() << " workloads)\n";
    }
    return out;
}

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Bit-exact comparison of the deterministic model outputs. */
bool
identicalModelOutputs(const std::vector<core::Characterization> &a,
                      const std::vector<core::Characterization> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.workloadNames != y.workloadNames ||
            x.checksumPerWorkload != y.checksumPerWorkload)
            return false;
        if (!bitIdentical(x.topdown.muGV, y.topdown.muGV) ||
            !bitIdentical(x.coverage.muGM, y.coverage.muGM))
            return false;
        for (std::size_t w = 0; w < x.topdownPerWorkload.size(); ++w) {
            const auto xa = x.topdownPerWorkload[w].asArray();
            const auto ya = y.topdownPerWorkload[w].asArray();
            for (std::size_t k = 0; k < xa.size(); ++k) {
                if (!bitIdentical(xa[k], ya[k]))
                    return false;
            }
        }
        if (x.coveragePerWorkload != y.coveragePerWorkload)
            return false;
    }
    return true;
}

double
timeSuite(std::vector<core::Characterization> &out,
          const core::CharacterizeOptions &options, const char *label)
{
    const auto start = std::chrono::steady_clock::now();
    out = characterizeSuite(options, label);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 8;
    if (const char *env = std::getenv("ALBERTA_JOBS")) {
        if (std::atoi(env) > 0)
            jobs = std::atoi(env);
    }
    std::string jsonPath = "BENCH_table2.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::cerr << "usage: bench_table2 [--jobs N] [--json "
                         "PATH]\n";
            return 2;
        }
    }

    std::cout << "Table II: workload counts, top-down summaries "
                 "(Eqs. 1-4), method-coverage\nsummary mu_g(M) "
                 "(Eq. 5), and refrate times for the Alberta "
                 "workload sets.\n\n";

    // 1. Serial baseline: the pre-executor code path.
    std::vector<core::Characterization> serial;
    core::CharacterizeOptions serialOptions;
    serialOptions.jobs = 1;
    const double serialSeconds =
        timeSuite(serial, serialOptions, "serial");

    // 2. Parallel with a cold cache: pure thread-pool speedup. The
    // engine bundles the pool, cache, and stats the three raw
    // pointers used to carry.
    runtime::Engine engine(jobs);
    core::CharacterizeOptions parallelOptions;
    parallelOptions.engine = &engine;
    std::vector<core::Characterization> parallel;
    const double parallelSeconds =
        timeSuite(parallel, parallelOptions, "parallel");

    // 3. Same pool, warm cache: the memoized re-characterization.
    std::vector<core::Characterization> warm;
    const double warmSeconds = timeSuite(warm, parallelOptions, "warm");

    const bool identical = identicalModelOutputs(serial, parallel) &&
                           identicalModelOutputs(serial, warm);

    support::Table table(core::table2Header());
    for (const auto &c : serial)
        table.addRow(core::table2Row(c));
    table.print(std::cout);

    std::cout << "\nColumns: mu_g as percent; sg dimensionless; "
                 "mu_g(V) = geomean of sg/mu_g over f,b,s,r;\n"
                 "mu_g(M) = geomean of per-method proportional "
                 "variation (percent-scale, +0.01 offset).\n";

    const runtime::ExecutorStats &stats = engine.stats();
    std::cout << "\nExecution engine (" << engine.jobs()
              << " jobs):\n"
              << "  serial baseline    : " << serialSeconds << " s\n"
              << "  parallel, cold     : " << parallelSeconds
              << " s (speedup "
              << serialSeconds / parallelSeconds << "x)\n"
              << "  parallel, warm     : " << warmSeconds
              << " s (speedup " << serialSeconds / warmSeconds
              << "x)\n"
              << "  tasks run          : " << stats.tasksRun << "\n"
              << "  task queue / run   : " << stats.queueSeconds
              << " s / " << stats.runSeconds << " s\n"
              << "  cache hits/misses  : " << stats.cacheHits << "/"
              << stats.cacheMisses << " (" << engine.cache().size()
              << " entries)\n"
              << "  model outputs      : "
              << (identical ? "bit-identical across all runs"
                            : "MISMATCH (bug!)")
              << "\n";

    std::ofstream json(jsonPath);
    json << "{\n"
         << "  \"bench\": \"table2\",\n"
         << "  \"jobs\": " << engine.jobs() << ",\n"
         << "  \"benchmarks\": " << serial.size() << ",\n"
         << "  \"serial_seconds\": " << serialSeconds << ",\n"
         << "  \"parallel_cold_seconds\": " << parallelSeconds << ",\n"
         << "  \"parallel_warm_seconds\": " << warmSeconds << ",\n"
         << "  \"speedup_parallel_cold\": "
         << serialSeconds / parallelSeconds << ",\n"
         << "  \"speedup_parallel_warm\": "
         << serialSeconds / warmSeconds << ",\n"
         << "  \"cache_hits\": " << stats.cacheHits << ",\n"
         << "  \"cache_misses\": " << stats.cacheMisses << ",\n"
         << "  \"identical_model_outputs\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::cerr << "  [table2] wrote " << jsonPath << "\n";

    return identical ? 0 : 1;
}
