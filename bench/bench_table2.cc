/**
 * @file
 * Reproduces Table II: for each of the paper's 15 benchmarks, the
 * workload count, geometric mean and geometric standard deviation of
 * the four top-down categories (f, b, s, r), the proportional-
 * variation summary mu_g(V) (Eq. 4), the method-coverage summary
 * mu_g(M) (Eq. 5), and the mean refrate time over three runs.
 *
 * Reproduction target (see EXPERIMENTS.md): the *shape* — which
 * benchmarks are workload-sensitive, the small-mean bad-speculation
 * inflation for lbm/cactuBSSN, and the coverage-variation ordering —
 * not the absolute hardware values.
 *
 * The suite is characterized four times to exercise and track the
 * execution engine across PRs:
 *
 *   1. serial baseline      per-benchmark loop, jobs=1, no cache
 *   2. suite-scheduled cold characterizeTable2 through one global
 *                           longest-first batch, empty memory cache,
 *                           cold disk cache
 *   3. warm (in-process)    same engine, memoized results
 *   4. disk-warm            a FRESH engine on the same cache
 *                           directory — simulates a second process
 *                           whose memory cache is empty but whose
 *                           disk cache is populated
 *
 * Model outputs must be bit-identical across all four; wall times, the
 * derived speedups, and the disk-cache counters are written to
 * BENCH_table2.json.
 *
 *   bench_table2 [--jobs N] [--json PATH] [--cache-dir DIR]
 *
 * Without --cache-dir a temporary directory is used and removed on
 * exit; with it, the store (results + cost ledger) persists so later
 * invocations start warm.
 */
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/suite.h"
#include "support/table.h"

namespace {

using namespace alberta;

/** The pre-scheduler code path: one benchmark at a time, serially. */
std::vector<core::Characterization>
characterizePerBenchmark(const core::CharacterizeOptions &options,
                         const char *label)
{
    std::vector<core::Characterization> out;
    for (const auto &name : core::table2Names()) {
        const auto bm = core::makeBenchmark(name);
        out.push_back(core::characterize(*bm, options));
        std::cerr << "  [table2:" << label << "] " << name << " done ("
                  << out.back().workloadNames.size() << " workloads)\n";
    }
    return out;
}

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Bit-exact comparison of the deterministic model outputs. */
bool
identicalModelOutputs(const std::vector<core::Characterization> &a,
                      const std::vector<core::Characterization> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.workloadNames != y.workloadNames ||
            x.checksumPerWorkload != y.checksumPerWorkload)
            return false;
        if (!bitIdentical(x.topdown.muGV, y.topdown.muGV) ||
            !bitIdentical(x.coverage.muGM, y.coverage.muGM))
            return false;
        for (std::size_t w = 0; w < x.topdownPerWorkload.size(); ++w) {
            const auto xa = x.topdownPerWorkload[w].asArray();
            const auto ya = y.topdownPerWorkload[w].asArray();
            for (std::size_t k = 0; k < xa.size(); ++k) {
                if (!bitIdentical(xa[k], ya[k]))
                    return false;
            }
        }
        if (x.coveragePerWorkload != y.coveragePerWorkload)
            return false;
    }
    return true;
}

template <typename Fn>
double
timeSuite(std::vector<core::Characterization> &out, Fn &&run,
          const char *label)
{
    const auto start = std::chrono::steady_clock::now();
    out = run();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::cerr << "  [table2] " << label << ": " << seconds << " s\n";
    return seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 8;
    if (const char *env = std::getenv("ALBERTA_JOBS")) {
        if (std::atoi(env) > 0)
            jobs = std::atoi(env);
    }
    std::string jsonPath = "BENCH_table2.json";
    std::string cacheDir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                 i + 1 < argc)
            cacheDir = argv[++i];
        else {
            std::cerr << "usage: bench_table2 [--jobs N] [--json "
                         "PATH] [--cache-dir DIR]\n";
            return 2;
        }
    }

    // A private scratch store unless the caller wants persistence.
    bool scratchStore = false;
    if (cacheDir.empty()) {
        cacheDir = (std::filesystem::temp_directory_path() /
                    ("alberta-bench-cache-" +
                     std::to_string(::getpid())))
                       .string();
        scratchStore = true;
    }

    std::cout << "Table II: workload counts, top-down summaries "
                 "(Eqs. 1-4), method-coverage\nsummary mu_g(M) "
                 "(Eq. 5), and refrate times for the Alberta "
                 "workload sets.\n\n";

    // 1. Serial baseline: the pre-scheduler code path.
    std::vector<core::Characterization> serial;
    core::CharacterizeOptions serialOptions;
    serialOptions.jobs = 1;
    const double serialSeconds = timeSuite(
        serial,
        [&] { return characterizePerBenchmark(serialOptions, "serial"); },
        "serial baseline");

    // 2. Suite-scheduled, cold: every (benchmark, workload) run across
    // all 15 benchmarks in one longest-first Executor batch, memory
    // and disk caches both empty. This pass also seeds the disk store
    // and the cost ledger.
    runtime::Engine engine = runtime::Engine::Builder()
                                 .jobs(jobs)
                                 .cacheDir(cacheDir)
                                 .build();
    core::CharacterizeOptions suiteOptions;
    suiteOptions.engine = &engine;
    std::vector<core::Characterization> suiteCold;
    const double suiteColdSeconds = timeSuite(
        suiteCold, [&] { return core::characterizeTable2(suiteOptions); },
        "suite-scheduled cold");

    // 3. Same engine, warm memory cache: the memoized
    // re-characterization.
    std::vector<core::Characterization> warm;
    const double warmSeconds = timeSuite(
        warm, [&] { return core::characterizeTable2(suiteOptions); },
        "warm (in-process)");

    // 4. Fresh engine, same directory: a second process's first run —
    // the memory cache starts empty, every result is served from disk.
    runtime::Engine second = runtime::Engine::Builder()
                                 .jobs(jobs)
                                 .cacheDir(cacheDir)
                                 .build();
    core::CharacterizeOptions secondOptions;
    secondOptions.engine = &second;
    std::vector<core::Characterization> diskWarm;
    const double diskWarmSeconds = timeSuite(
        diskWarm, [&] { return core::characterizeTable2(secondOptions); },
        "disk-warm (fresh engine)");

    const bool identical = identicalModelOutputs(serial, suiteCold) &&
                           identicalModelOutputs(serial, warm) &&
                           identicalModelOutputs(serial, diskWarm);

    support::Table table(core::table2Header());
    for (const auto &c : serial)
        table.addRow(core::table2Row(c));
    table.print(std::cout);

    std::cout << "\nColumns: mu_g as percent; sg dimensionless; "
                 "mu_g(V) = geomean of sg/mu_g over f,b,s,r;\n"
                 "mu_g(M) = geomean of per-method proportional "
                 "variation (percent-scale, +0.01 offset).\n";

    const runtime::ExecutorStats &stats = engine.stats();
    const runtime::PersistentCache *disk = second.disk();
    std::cout << "\nExecution engine (" << engine.jobs()
              << " jobs):\n"
              << "  serial baseline    : " << serialSeconds << " s\n"
              << "  suite-sched, cold  : " << suiteColdSeconds
              << " s (speedup "
              << serialSeconds / suiteColdSeconds << "x)\n"
              << "  parallel, warm     : " << warmSeconds
              << " s (speedup " << serialSeconds / warmSeconds
              << "x)\n"
              << "  disk-warm          : " << diskWarmSeconds
              << " s (speedup " << serialSeconds / diskWarmSeconds
              << "x)\n"
              << "  tasks run          : " << stats.tasksRun << "\n"
              << "  task queue / run   : " << stats.queueSeconds
              << " s / " << stats.runSeconds << " s\n"
              << "  cache hits/misses  : " << stats.cacheHits << "/"
              << stats.cacheMisses << " (" << engine.cache().size()
              << " entries)\n"
              << "  disk hits (2nd eng): " << disk->hits() << " ("
              << disk->corrupt() << " corrupt)\n"
              << "  model outputs      : "
              << (identical ? "bit-identical across all runs"
                            : "MISMATCH (bug!)")
              << "\n";

    std::ofstream json(jsonPath);
    json << "{\n"
         << "  \"bench\": \"table2\",\n"
         << "  \"jobs\": " << engine.jobs() << ",\n"
         << "  \"benchmarks\": " << serial.size() << ",\n"
         << "  \"serial_seconds\": " << serialSeconds << ",\n"
         << "  \"suite_sched_cold_seconds\": " << suiteColdSeconds
         << ",\n"
         << "  \"parallel_warm_seconds\": " << warmSeconds << ",\n"
         << "  \"disk_warm_seconds\": " << diskWarmSeconds << ",\n"
         << "  \"speedup_suite_cold\": "
         << serialSeconds / suiteColdSeconds << ",\n"
         << "  \"speedup_parallel_warm\": "
         << serialSeconds / warmSeconds << ",\n"
         << "  \"speedup_disk_warm\": "
         << serialSeconds / diskWarmSeconds << ",\n"
         << "  \"cache_hits\": " << stats.cacheHits << ",\n"
         << "  \"cache_misses\": " << stats.cacheMisses << ",\n"
         << "  \"disk_hits\": " << disk->hits() << ",\n"
         << "  \"disk_corrupt\": " << disk->corrupt() << ",\n"
         << "  \"identical_model_outputs\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::cerr << "  [table2] wrote " << jsonPath << "\n";

    if (scratchStore) {
        std::error_code ec;
        std::filesystem::remove_all(cacheDir, ec);
    }

    return identical ? 0 : 1;
}
