/**
 * @file
 * Reproduces Table II: for each of the paper's 15 benchmarks, the
 * workload count, geometric mean and geometric standard deviation of
 * the four top-down categories (f, b, s, r), the proportional-
 * variation summary mu_g(V) (Eq. 4), the method-coverage summary
 * mu_g(M) (Eq. 5), and the mean refrate time over three runs.
 *
 * Reproduction target (see EXPERIMENTS.md): the *shape* — which
 * benchmarks are workload-sensitive, the small-mean bad-speculation
 * inflation for lbm/cactuBSSN, and the coverage-variation ordering —
 * not the absolute hardware values.
 *
 * The suite is characterized six times to exercise and track the
 * execution engine across PRs:
 *
 *   1. serial baseline      per-benchmark loop, jobs=1, no cache
 *   2. suite-scheduled cold characterizeTable2 through one global
 *                           longest-first batch, empty memory cache,
 *                           cold disk cache
 *   3. warm (in-process)    same engine, memoized results
 *   4. disk-warm            a FRESH engine on the same cache
 *                           directory — simulates a second process
 *                           whose memory cache is empty but whose
 *                           disk cache is populated
 *   5. segment-parallel     cold again (private scratch store), with
 *                           checkpoint-and-splice segmentation of
 *                           long model runs (--segments, default
 *                           auto) breaking the single-run latency
 *                           wall
 *   6. batched-exact cold   per-benchmark loop, jobs=1, no cache,
 *                           every model run capture-then-batched-
 *                           replay (the --batched CLI path) — tracks
 *                           the block-batched kernel end to end,
 *                           capture overhead included
 *
 * Model outputs must be bit-identical across the five exact passes;
 * the segmented pass must match checksums exactly and every top-down
 * fraction within the pinned 1e-3 splice bound. Wall times, derived
 * speedups, per-benchmark longest-chain seconds, the suite critical
 * path, and the disk-cache counters are written to BENCH_table2.json.
 *
 *   bench_table2 [--jobs N] [--segments {auto,K}] [--json PATH]
 *                [--cache-dir DIR]
 *
 * Without --cache-dir a temporary directory is used and removed on
 * exit; with it, the store (results + cost ledger) persists so later
 * invocations start warm.
 */
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/suite.h"
#include "support/table.h"

namespace {

using namespace alberta;

/** The pre-scheduler code path: one benchmark at a time, serially.
 * When @p perBenchSeconds is non-null it receives each benchmark's
 * wall seconds in table order. */
std::vector<core::Characterization>
characterizePerBenchmark(const core::RunRequest &request,
                         const char *label,
                         std::vector<double> *perBenchSeconds = nullptr)
{
    std::vector<core::Characterization> out;
    for (const auto &name : core::table2Names()) {
        const auto start = std::chrono::steady_clock::now();
        const auto bm = core::makeBenchmark(name);
        out.push_back(core::characterize(*bm, request));
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (perBenchSeconds)
            perBenchSeconds->push_back(seconds);
        std::cerr << "  [table2:" << label << "] " << name << " done ("
                  << out.back().workloadNames.size() << " workloads)\n";
    }
    return out;
}

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Bit-exact comparison of the deterministic model outputs. */
bool
identicalModelOutputs(const std::vector<core::Characterization> &a,
                      const std::vector<core::Characterization> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.workloadNames != y.workloadNames ||
            x.checksumPerWorkload != y.checksumPerWorkload)
            return false;
        if (!bitIdentical(x.topdown.muGV, y.topdown.muGV) ||
            !bitIdentical(x.coverage.muGM, y.coverage.muGM))
            return false;
        for (std::size_t w = 0; w < x.topdownPerWorkload.size(); ++w) {
            const auto xa = x.topdownPerWorkload[w].asArray();
            const auto ya = y.topdownPerWorkload[w].asArray();
            for (std::size_t k = 0; k < xa.size(); ++k) {
                if (!bitIdentical(xa[k], ya[k]))
                    return false;
            }
        }
        if (x.coveragePerWorkload != y.coveragePerWorkload)
            return false;
    }
    return true;
}

/**
 * Largest absolute difference across every workload's four top-down
 * fractions, or infinity when the workload sets or checksums differ
 * (splicing never touches the checksum path, so checksums must be
 * exactly equal).
 */
double
maxSpliceError(const std::vector<core::Characterization> &exact,
               const std::vector<core::Characterization> &spliced)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (exact.size() != spliced.size())
        return kInf;
    double worst = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const auto &x = exact[i];
        const auto &y = spliced[i];
        if (x.workloadNames != y.workloadNames ||
            x.checksumPerWorkload != y.checksumPerWorkload)
            return kInf;
        for (std::size_t w = 0; w < x.topdownPerWorkload.size(); ++w) {
            const auto xa = x.topdownPerWorkload[w].asArray();
            const auto ya = y.topdownPerWorkload[w].asArray();
            for (std::size_t k = 0; k < xa.size(); ++k)
                worst = std::max(worst, std::abs(xa[k] - ya[k]));
        }
    }
    return worst;
}

/** Longest single-workload model run (the benchmark's critical
 * chain: its workloads are independent, so the slowest one bounds
 * the benchmark's latency on unlimited workers). */
double
longestChainSeconds(const core::Characterization &c)
{
    double chain = 0.0;
    for (const double s : c.secondsPerWorkload)
        chain = std::max(chain, s);
    return chain;
}

template <typename Fn>
double
timeSuite(std::vector<core::Characterization> &out, Fn &&run,
          const char *label)
{
    const auto start = std::chrono::steady_clock::now();
    out = run();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::cerr << "  [table2] " << label << ": " << seconds << " s\n";
    return seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 8;
    if (const char *env = std::getenv("ALBERTA_JOBS")) {
        if (std::atoi(env) > 0)
            jobs = std::atoi(env);
    }
    int segments = 0; // 0 = auto
    std::string jsonPath = "BENCH_table2.json";
    std::string cacheDir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--segments") == 0 &&
                 i + 1 < argc) {
            ++i;
            segments = std::strcmp(argv[i], "auto") == 0
                           ? 0
                           : std::atoi(argv[i]);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                 i + 1 < argc)
            cacheDir = argv[++i];
        else {
            std::cerr << "usage: bench_table2 [--jobs N] [--segments "
                         "{auto,K}] [--json PATH] [--cache-dir DIR]\n";
            return 2;
        }
    }

    // A private scratch store unless the caller wants persistence.
    bool scratchStore = false;
    if (cacheDir.empty()) {
        cacheDir = (std::filesystem::temp_directory_path() /
                    ("alberta-bench-cache-" +
                     std::to_string(::getpid())))
                       .string();
        scratchStore = true;
    }

    std::cout << "Table II: workload counts, top-down summaries "
                 "(Eqs. 1-4), method-coverage\nsummary mu_g(M) "
                 "(Eq. 5), and refrate times for the Alberta "
                 "workload sets.\n\n";

    // 1. Serial baseline: the pre-scheduler code path. Per-benchmark
    // wall seconds double as the longest-chain baseline.
    std::vector<core::Characterization> serial;
    std::vector<double> serialPerBench;
    core::RunRequest serialRequest;
    serialRequest.jobs = 1;
    const double serialSeconds = timeSuite(
        serial,
        [&] {
            return characterizePerBenchmark(serialRequest, "serial",
                                            &serialPerBench);
        },
        "serial baseline");

    // 2. Suite-scheduled, cold: every (benchmark, workload) run across
    // all 15 benchmarks in one longest-first Executor batch, memory
    // and disk caches both empty. This pass also seeds the disk store
    // and the cost ledger.
    runtime::Engine engine = runtime::Engine::Builder()
                                 .jobs(jobs)
                                 .cacheDir(cacheDir)
                                 .build();
    core::RunRequest suiteRequest;
    std::vector<core::Characterization> suiteCold;
    const double suiteColdSeconds = timeSuite(
        suiteCold,
        [&] { return core::characterizeTable2(suiteRequest, &engine); },
        "suite-scheduled cold");

    // 3. Same engine, warm memory cache: the memoized
    // re-characterization.
    std::vector<core::Characterization> warm;
    const double warmSeconds = timeSuite(
        warm,
        [&] { return core::characterizeTable2(suiteRequest, &engine); },
        "warm (in-process)");

    // 4. Fresh engine, same directory: a second process's first run —
    // the memory cache starts empty, every result is served from disk.
    runtime::Engine second = runtime::Engine::Builder()
                                 .jobs(jobs)
                                 .cacheDir(cacheDir)
                                 .build();
    std::vector<core::Characterization> diskWarm;
    const double diskWarmSeconds = timeSuite(
        diskWarm,
        [&] { return core::characterizeTable2(suiteRequest, &second); },
        "disk-warm (fresh engine)");

    // 6. Batched-exact, cold: the serial loop again, but every model
    // run captures its uop stream once and replays it through the
    // block-batched kernel (runtime::runBatchedExact). Same outputs,
    // bit for bit; the wall time prices capture + batched replay
    // against the fused generate-and-model serial baseline.
    core::RunRequest batchedRequest;
    batchedRequest.jobs = 1;
    batchedRequest.batched = true;
    std::vector<core::Characterization> batchedExact;
    const double batchedSeconds = timeSuite(
        batchedExact,
        [&] {
            return characterizePerBenchmark(batchedRequest, "batched");
        },
        "batched-exact cold");

    const bool identical = identicalModelOutputs(serial, suiteCold) &&
                           identicalModelOutputs(serial, warm) &&
                           identicalModelOutputs(serial, diskWarm) &&
                           identicalModelOutputs(serial, batchedExact);

    // 5. Segment-parallel, cold: a private scratch store so nothing
    // is served from the earlier passes, with long model runs cut
    // into concurrent segment replays through the scheduler's
    // expansion waves.
    const std::string segCacheDir =
        (std::filesystem::temp_directory_path() /
         ("alberta-bench-segcache-" + std::to_string(::getpid())))
            .string();
    runtime::Engine segEngine = runtime::Engine::Builder()
                                    .jobs(jobs)
                                    .cacheDir(segCacheDir)
                                    .build();
    core::RunRequest segRequest;
    segRequest.segments = segments;
    std::vector<core::Characterization> segmented;
    const double segmentedSeconds = timeSuite(
        segmented,
        [&] { return core::characterizeTable2(segRequest, &segEngine); },
        "segment-parallel cold");
    {
        std::error_code ec;
        std::filesystem::remove_all(segCacheDir, ec);
    }
    const double spliceError = maxSpliceError(serial, segmented);
    constexpr double kSpliceBound = 1e-3; // pinned by test_segment

    support::Table table(core::table2Header());
    for (const auto &c : serial)
        table.addRow(core::table2Row(c));
    table.print(std::cout);

    std::cout << "\nColumns: mu_g as percent; sg dimensionless; "
                 "mu_g(V) = geomean of sg/mu_g over f,b,s,r;\n"
                 "mu_g(M) = geomean of per-method proportional "
                 "variation (percent-scale, +0.01 offset).\n";

    const runtime::ExecutorStats &stats = engine.stats();
    const runtime::PersistentCache *disk = second.disk();
    std::cout << "\nExecution engine (" << engine.jobs()
              << " jobs):\n"
              << "  serial baseline    : " << serialSeconds << " s\n"
              << "  suite-sched, cold  : " << suiteColdSeconds
              << " s (speedup "
              << serialSeconds / suiteColdSeconds << "x)\n"
              << "  parallel, warm     : " << warmSeconds
              << " s (speedup " << serialSeconds / warmSeconds
              << "x)\n"
              << "  disk-warm          : " << diskWarmSeconds
              << " s (speedup " << serialSeconds / diskWarmSeconds
              << "x)\n"
              << "  segmented, cold    : " << segmentedSeconds
              << " s (speedup " << serialSeconds / segmentedSeconds
              << "x, splice err " << spliceError << ")\n"
              << "  batched-exact, cold: " << batchedSeconds
              << " s (speedup " << serialSeconds / batchedSeconds
              << "x)\n"
              << "  tasks run          : " << stats.tasksRun << "\n"
              << "  task queue / run   : " << stats.queueSeconds
              << " s / " << stats.runSeconds << " s\n"
              << "  cache hits/misses  : " << stats.cacheHits << "/"
              << stats.cacheMisses << " (" << engine.cache().size()
              << " entries)\n"
              << "  disk hits (2nd eng): " << disk->hits() << " ("
              << disk->corrupt() << " corrupt)\n"
              << "  model outputs      : "
              << (identical ? "bit-identical across exact runs"
                            : "MISMATCH (bug!)")
              << "\n"
              << "  spliced fractions  : "
              << (spliceError < kSpliceBound
                      ? "within pinned 1e-3 bound"
                      : "OUT OF BOUND (bug!)")
              << "\n";

    // Longest-chain view: each benchmark's slowest single model run,
    // serial vs segmented — the latency segment parallelism exists to
    // shrink. The suite critical path is the slowest chain.
    double criticalSerial = 0.0;
    double criticalSegmented = 0.0;
    for (std::size_t b = 0; b < serial.size(); ++b) {
        criticalSerial =
            std::max(criticalSerial, longestChainSeconds(serial[b]));
        criticalSegmented = std::max(
            criticalSegmented, longestChainSeconds(segmented[b]));
    }
    std::cout << "  critical path      : " << criticalSerial
              << " s serial -> " << criticalSegmented
              << " s segmented ("
              << criticalSerial / criticalSegmented << "x)\n";

    std::ofstream json(jsonPath);
    json << "{\n"
         << "  \"bench\": \"table2\",\n"
         << "  \"jobs\": " << engine.jobs() << ",\n"
         << "  \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"segments\": "
         << (segments == 0 ? std::string("\"auto\"")
                           : std::to_string(segments))
         << ",\n"
         << "  \"benchmarks\": " << serial.size() << ",\n"
         << "  \"serial_seconds\": " << serialSeconds << ",\n"
         << "  \"suite_sched_cold_seconds\": " << suiteColdSeconds
         << ",\n"
         << "  \"parallel_warm_seconds\": " << warmSeconds << ",\n"
         << "  \"disk_warm_seconds\": " << diskWarmSeconds << ",\n"
         << "  \"segmented_cold_seconds\": " << segmentedSeconds
         << ",\n"
         << "  \"batched_cold_seconds\": " << batchedSeconds << ",\n"
         << "  \"speedup_batched_cold\": "
         << serialSeconds / batchedSeconds << ",\n"
         << "  \"speedup_suite_cold\": "
         << serialSeconds / suiteColdSeconds << ",\n"
         << "  \"speedup_parallel_warm\": "
         << serialSeconds / warmSeconds << ",\n"
         << "  \"speedup_disk_warm\": "
         << serialSeconds / diskWarmSeconds << ",\n"
         << "  \"speedup_segmented_cold\": "
         << serialSeconds / segmentedSeconds << ",\n"
         << "  \"critical_path_serial_seconds\": " << criticalSerial
         << ",\n"
         << "  \"critical_path_seconds\": " << criticalSegmented
         << ",\n"
         << "  \"splice_max_abs_error\": " << spliceError << ",\n"
         << "  \"splice_within_bound\": "
         << (spliceError < kSpliceBound ? "true" : "false") << ",\n"
         << "  \"per_benchmark\": [\n";
    for (std::size_t b = 0; b < serial.size(); ++b) {
        json << "    {\"name\": \"" << serial[b].benchmark
             << "\", \"serial_seconds\": " << serialPerBench[b]
             << ", \"longest_chain_serial_seconds\": "
             << longestChainSeconds(serial[b])
             << ", \"longest_chain_segmented_seconds\": "
             << longestChainSeconds(segmented[b]) << "}"
             << (b + 1 < serial.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"cache_hits\": " << stats.cacheHits << ",\n"
         << "  \"cache_misses\": " << stats.cacheMisses << ",\n"
         << "  \"disk_hits\": " << disk->hits() << ",\n"
         << "  \"disk_corrupt\": " << disk->corrupt() << ",\n"
         << "  \"identical_model_outputs\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::cerr << "  [table2] wrote " << jsonPath << "\n";

    if (scratchStore) {
        std::error_code ec;
        std::filesystem::remove_all(cacheDir, ec);
    }

    return identical && spliceError < kSpliceBound ? 0 : 1;
}
