/**
 * @file
 * Reproduces Table II: for each of the paper's 15 benchmarks, the
 * workload count, geometric mean and geometric standard deviation of
 * the four top-down categories (f, b, s, r), the proportional-
 * variation summary mu_g(V) (Eq. 4), the method-coverage summary
 * mu_g(M) (Eq. 5), and the mean refrate time over three runs.
 *
 * Reproduction target (see EXPERIMENTS.md): the *shape* — which
 * benchmarks are workload-sensitive, the small-mean bad-speculation
 * inflation for lbm/cactuBSSN, and the coverage-variation ordering —
 * not the absolute hardware values.
 */
#include <iostream>

#include "core/suite.h"
#include "support/table.h"

int
main()
{
    using namespace alberta;

    std::cout << "Table II: workload counts, top-down summaries "
                 "(Eqs. 1-4), method-coverage\nsummary mu_g(M) "
                 "(Eq. 5), and refrate times for the Alberta "
                 "workload sets.\n\n";

    support::Table table(core::table2Header());
    for (const auto &name : core::table2Names()) {
        const auto bm = core::makeBenchmark(name);
        const core::Characterization c = core::characterize(*bm);
        table.addRow(core::table2Row(c));
        std::cerr << "  [table2] " << name << " done ("
                  << c.workloadNames.size() << " workloads)\n";
    }
    table.print(std::cout);

    std::cout << "\nColumns: mu_g as percent; sg dimensionless; "
                 "mu_g(V) = geomean of sg/mu_g over f,b,s,r;\n"
                 "mu_g(M) = geomean of per-method proportional "
                 "variation (percent-scale, +0.01 offset).\n";
    return 0;
}
