/**
 * @file
 * Reproduces Figure 2: variation in function (method) coverage with
 * workload for 531.deepsjeng_r (left: stable coverage) versus
 * 557.xz_r (right: coverage shifts with the input's redundancy
 * structure). Prints the per-workload coverage matrix the paper's
 * bar graphs plot.
 */
#include <cstdio>
#include <iostream>

#include "core/suite.h"
#include "support/table.h"

namespace {

void
plotCoverage(const std::string &name,
             alberta::runtime::Engine &engine)
{
    using namespace alberta;
    const auto bm = core::makeBenchmark(name);
    core::RunRequest request;
    request.refrateRepetitions = 1;
    const core::Characterization c =
        core::characterize(*bm, request, &engine);

    std::cout << "\n" << name << " (Figure 2 series)\n";
    std::vector<std::string> header = {"workload"};
    for (const auto &method : c.coverage.methods)
        header.push_back(method);
    support::Table table(header);
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        std::vector<std::string> row = {c.workloadNames[i]};
        for (std::size_t j = 0; j < c.coverage.methods.size(); ++j) {
            row.push_back(
                support::formatFixed(c.coverage.matrix[i][j], 1));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nper-workload bars of the top method ("
              << c.coverage.methods.front() << ", % of time)\n";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        const int cols =
            static_cast<int>(c.coverage.matrix[i][0] / 2.0 + 0.5);
        std::printf("%-26s |%s\n", c.workloadNames[i].c_str(),
                    std::string(cols, '#').c_str());
    }
    std::cout << "mu_g(M) = "
              << support::formatFixed(c.coverage.muGM, 2) << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 2: function coverage per workload — "
                 "531.deepsjeng_r vs 557.xz_r.\nExpected shape: "
                 "deepsjeng's distribution is stable across "
                 "workloads; xz's shifts\nwith compressibility and "
                 "dictionary fit.\n";
    alberta::runtime::Engine engine;
    plotCoverage("531.deepsjeng_r", engine);
    plotCoverage("557.xz_r", engine);
    return 0;
}
