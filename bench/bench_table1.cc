/**
 * @file
 * Reproduces Table I: the evolution from SPEC CPU INT 2006 to 2017 —
 * application areas, the paired benchmark names, the official times
 * the paper quotes (i7-6700K), and this reproduction's measured
 * refrate times (mean of three runs of each mini-benchmark).
 *
 * Absolute seconds differ (mini-kernels on a different machine); the
 * deliverable is the per-area mapping plus a measured-time column
 * whose relative ordering can be compared with the paper's.
 */
#include <iostream>

#include "core/suite.h"
#include "runtime/benchmark.h"
#include "support/table.h"

namespace {

struct Row
{
    const char *area;
    const char *spec2017; //!< empty when absent from 2017
    const char *spec2006;
    int time2017;         //!< seconds, from the paper (0 = n/a)
    int time2006;
};

const Row kRows[] = {
    {"Perl interpreter", "500.perlbench_r", "400.perlbench", 542, 425},
    {"Compiler", "502.gcc_r", "403.gcc", 518, 346},
    {"Route planning", "505.mcf_r", "429.mcf", 633, 333},
    {"Discrete event simulation", "520.omnetpp_r", "471.omnetpp", 787,
     483},
    {"SML to HTML conversion", "523.xalancbmk_r", "483.xalancbmk", 323,
     221},
    {"Video compression", "525.x264_r", "464.h264ref", 379, 575},
    {"AI: alpha-beta tree search", "531.deepsjeng_r", "458.sjeng", 373,
     562},
    {"AI: Sudoku recursive solution", "548.exchange2_r", "", 498, 0},
    {"Data compression", "557.xz_r", "401.bzip2", 532, 681},
    {"AI: Go game playing", "541.leela_r", "445.gobmk", 586, 506},
    {"Search Gene Sequence", "", "456.hmmer", 0, 202},
    {"Physics: Quantum Computing", "", "462.libquantum", 0, 65},
    {"AI: path finding algorithm", "", "473.astar", 0, 461},
};

} // namespace

int
main()
{
    using namespace alberta;

    std::cout << "Table I: Evolution from SPEC CPU 2006 to SPEC CPU "
                 "2017 (INT)\n"
              << "Paper times: official submissions, i7-6700K. "
                 "Measured: this reproduction's\nmini-benchmark "
                 "refrate means over 3 runs (absolute values are "
                 "not comparable;\nthe mapping and relative "
                 "ordering are the reproduction target).\n\n";

    support::Table table({"Application Area", "SPEC 2017", "SPEC 2006",
                          "2017 paper(s)", "2006 paper(s)",
                          "measured(s)"});

    double paperSum2017 = 0.0, paperSum2006 = 0.0, measuredSum = 0.0;
    int paperCount2017 = 0, paperCount2006 = 0, measuredCount = 0;

    for (const Row &row : kRows) {
        std::string measured = "-";
        // 500.perlbench_r is present in the suite table but has no
        // mini-benchmark (the paper created no workloads for it).
        if (row.spec2017[0] != '\0' &&
            std::string(row.spec2017) != "500.perlbench_r") {
            const auto bm = core::makeBenchmark(row.spec2017);
            const auto refrate =
                runtime::findWorkload(*bm, "refrate");
            const auto agg = runtime::runRepeated(*bm, refrate, 3);
            measured = support::formatFixed(agg.meanSeconds, 3);
            measuredSum += agg.meanSeconds;
            ++measuredCount;
        }
        if (row.time2017 > 0) {
            paperSum2017 += row.time2017;
            ++paperCount2017;
        }
        if (row.time2006 > 0) {
            paperSum2006 += row.time2006;
            ++paperCount2006;
        }
        table.addRow(
            {row.area, row.spec2017, row.spec2006,
             row.time2017 ? std::to_string(row.time2017) : "-",
             row.time2006 ? std::to_string(row.time2006) : "-",
             measured});
    }
    table.addRow({"Arithmetic Average of Times", "", "",
                  support::formatFixed(paperSum2017 / paperCount2017,
                                       0),
                  support::formatFixed(paperSum2006 / paperCount2006,
                                       0),
                  support::formatFixed(measuredSum / measuredCount,
                                       3)});
    table.print(std::cout);
    return 0;
}
