/**
 * @file
 * Ablation F: kernel (SimPoint) representativeness across workloads —
 * the Section VII question. For each benchmark, a simulation kernel
 * is extracted from the *refrate* run only (the common single-
 * workload practice the paper questions); the bench then measures how
 * far that kernel's behaviour lies from the full-run behaviour of
 * every other workload.
 *
 * Expected shape: for workload-stable benchmarks (lbm) the refrate
 * kernel stays representative everywhere; for workload-sensitive
 * ones the cross-workload error is several times the self error.
 */
#include <algorithm>
#include <iostream>

#include "core/phases.h"
#include "support/table.h"

int
main()
{
    using namespace alberta;

    std::cout << "Ablation F: does a kernel extracted from the "
                 "refrate run represent other\nworkloads? error = L1 "
                 "distance between top-down vectors (0..2).\n\n";

    support::Table table({"Benchmark", "self error",
                          "cross error (mean)", "cross error (max)",
                          "worst workload"});

    for (const char *name : {"519.lbm_r", "548.exchange2_r",
                             "557.xz_r", "502.gcc_r",
                             "523.xalancbmk_r"}) {
        const auto bm = core::makeBenchmark(name);
        const auto refrate = runtime::findWorkload(*bm, "refrate");
        const core::PhaseAnalysis kernel =
            core::analyzePhases(*bm, refrate);

        double sum = 0.0, worst = -1.0;
        std::string worstName;
        int count = 0;
        for (const auto &w : bm->workloads()) {
            if (w.isRefrate())
                continue;
            const auto full = runtime::runOnce(*bm, w);
            const double err = core::behaviourDistance(
                kernel.representativeRatios, full.topdown);
            sum += err;
            if (err > worst) {
                worst = err;
                worstName = w.name;
            }
            ++count;
        }
        table.addRow({name,
                      support::formatFixed(kernel.selfError, 3),
                      support::formatFixed(sum / count, 3),
                      support::formatFixed(worst, 3), worstName});
        std::cerr << "  [kernel] " << name << " done\n";
    }
    table.print(std::cout);
    std::cout << "\nReading: self error is the kernel's quality on "
                 "its own workload; the gap to\nthe cross-workload "
                 "columns is what single-workload kernel creation "
                 "hides.\n";
    return 0;
}
