/**
 * @file
 * Ablation C: the 519.lbm_r summarization pathology (Section V-B).
 * lbm retires almost no speculative work, so its bad-speculation
 * geometric mean is tiny; combined with counter-noise-level spread,
 * the tiny mean inflates V(s) = sigma_g/mu_g and therefore mu_g(V).
 * This bench recomputes mu_g(V) with the bad-speculation category
 * (a) included as measured, (b) floored harder, and (c) excluded,
 * showing the summary's sensitivity — the paper's "look into the
 * data" caveat, quantified.
 */
#include <cmath>
#include <iostream>

#include "core/suite.h"
#include "support/table.h"

namespace {

double
muGvExcludingBadspec(const alberta::stats::TopdownSummary &s)
{
    return std::pow(s.frontend.variation * s.backend.variation *
                        s.retiring.variation,
                    1.0 / 3.0);
}

} // namespace

int
main()
{
    using namespace alberta;

    std::cout << "Ablation C: small-mean category inflation of "
                 "mu_g(V) (519.lbm_r vs peers).\n\n";

    support::Table table({"Benchmark", "s.mu_g%", "s.sigma_g", "V(s)",
                          "mu_g(V) all", "mu_g(V) floored 1%",
                          "mu_g(V) w/o s"});

    for (const char *name :
         {"519.lbm_r", "507.cactuBSSN_r", "557.xz_r",
          "531.deepsjeng_r"}) {
        const auto bm = core::makeBenchmark(name);
        core::RunRequest request;
        request.refrateRepetitions = 1;
        const core::Characterization c =
            core::characterize(*bm, request);

        // Recompute with a 1% floor on bad speculation.
        const stats::TopdownSummary floored = stats::summarizeTopdown(
            c.topdownPerWorkload, 0.01);

        table.addRow(
            {name,
             support::formatPercent(c.topdown.badspec.mean, 2),
             support::formatFixed(c.topdown.badspec.stddev, 2),
             support::formatFixed(c.topdown.badspec.variation, 1),
             support::formatFixed(c.topdown.muGV, 2),
             support::formatFixed(floored.muGV, 2),
             support::formatFixed(muGvExcludingBadspec(c.topdown),
                                  2)});
        std::cerr << "  [lbm-ablation] " << name << " done\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: lbm/cactuBSSN show the largest "
                 "gap between 'all' and 'w/o s',\nconfirming the "
                 "inflation comes from the near-zero "
                 "bad-speculation mean.\n";
    return 0;
}
