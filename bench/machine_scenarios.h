/**
 * @file
 * The five deterministic machine scenarios shared by bench_machine and
 * the topdown state-completeness tests. Each stresses a distinct fast
 * path of the accounting inner loop:
 *
 *   alu        bulk ops() reports, the pure accounting hot path
 *   branchy    patterned conditional branches (gshare + site profile)
 *   memory     scattered loads over an L2-resident working set
 *   streaming  stream() over long contiguous ranges (batched charges)
 *   mixed      interpreter-style dispatch: indirect + load per step
 *
 * The tests replay these exact call sequences to verify that
 * Machine::reset() and snapshot()/restore() cover the complete
 * architectural state, so a new kind of machine activity added to a
 * scenario here is automatically covered by those tests too.
 */
#ifndef ALBERTA_BENCH_MACHINE_SCENARIOS_H
#define ALBERTA_BENCH_MACHINE_SCENARIOS_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "support/rng.h"
#include "topdown/machine.h"

namespace alberta::bench {

/** Iterations per child span in the chunked scenarios. */
inline constexpr std::uint64_t kScenarioChunk = 256 * 1024;

/** Pure accounting: bulk ALU reports with periodic method switches. */
inline void
scenarioAlu(topdown::Machine &m, std::uint64_t scale, obs::Tracer *tracer,
            std::uint64_t parent)
{
    using topdown::OpKind;
    for (std::uint64_t rep = 0; rep < 200 * scale; ++rep) {
        obs::Span span(tracer, "alu_rep", "bench", parent);
        m.setMethod(1 + rep % 7, 2048 + 512 * (rep % 3),
                    support::mix64(rep % 7));
        m.ops(OpKind::IntAlu, 40000);
        m.ops(OpKind::IntMul, 8000);
    }
}

/** Patterned conditional branches: loop-like, biased, and noisy. */
inline void
scenarioBranchy(topdown::Machine &m, std::uint64_t scale,
                obs::Tracer *tracer, std::uint64_t parent)
{
    support::Rng rng(0xb7a2c001);
    const std::uint64_t total = 3'000'000 * scale;
    for (std::uint64_t base = 0; base < total; base += kScenarioChunk) {
        obs::Span span(tracer, "branchy_chunk", "bench", parent);
        const std::uint64_t end = std::min(total, base + kScenarioChunk);
        for (std::uint64_t i = base; i < end; ++i) {
            m.branch(static_cast<std::uint32_t>(i % 13),
                     (i & 7) != 0);                    // loop back-edge
            m.branch(200, rng.chance(0.9));            // biased branch
            m.branch(300 + i % 3, (i >> (i % 5)) & 1); // phase-shifting
        }
        span.note("iters", end - base);
    }
}

/** Scattered loads over ~128 KiB: L1-missing, L2-hitting. */
inline void
scenarioMemory(topdown::Machine &m, std::uint64_t scale,
               obs::Tracer *tracer, std::uint64_t parent)
{
    support::Rng rng(0x3e30a001);
    const std::uint64_t total = 4'000'000 * scale;
    for (std::uint64_t base = 0; base < total; base += kScenarioChunk) {
        obs::Span span(tracer, "memory_chunk", "bench", parent);
        const std::uint64_t end = std::min(total, base + kScenarioChunk);
        for (std::uint64_t i = base; i < end; ++i) {
            m.load(0x10000000ULL + rng.below(128 * 1024));
            if ((i & 15) == 0)
                m.store(0x20000000ULL + rng.below(64 * 1024));
        }
        span.note("iters", end - base);
    }
}

/** Long contiguous streams: the batched line-accounting path. */
inline void
scenarioStreaming(topdown::Machine &m, std::uint64_t scale,
                  obs::Tracer *tracer, std::uint64_t parent)
{
    using topdown::OpKind;
    for (std::uint64_t rep = 0; rep < 600 * scale; ++rep) {
        obs::Span span(tracer, "stream_rep", "bench", parent);
        const std::uint64_t base = 0x40000000ULL + (rep % 5) * (1 << 22);
        m.stream(OpKind::Load, base, 20000, 8);
        m.stream(OpKind::Store, base + (1 << 21), 10000, 8);
        m.ops(OpKind::FpAdd, 30000);
    }
}

/** Interpreter-style dispatch: indirect branch + load per step. */
inline void
scenarioMixed(topdown::Machine &m, std::uint64_t scale,
              obs::Tracer *tracer, std::uint64_t parent)
{
    using topdown::OpKind;
    support::Rng rng(0x371bed01);
    std::vector<std::uint64_t> program(4096);
    for (auto &op : program)
        op = rng.below(48);
    std::uint64_t pc = 0;
    const std::uint64_t total = 2'000'000 * scale;
    for (std::uint64_t base = 0; base < total; base += kScenarioChunk) {
        obs::Span span(tracer, "mixed_chunk", "bench", parent);
        const std::uint64_t end = std::min(total, base + kScenarioChunk);
        for (std::uint64_t i = base; i < end; ++i) {
            const std::uint64_t op = program[pc];
            m.load(0x750000000ULL + pc * 16);
            m.indirect(2, op);
            m.ops(OpKind::IntAlu, 2);
            if (m.branch(3, (i & 31) == 0))
                pc = (pc + op) % program.size();
            else
                pc = (pc + 1) % program.size();
        }
        span.note("iters", end - base);
    }
}

/** Scenario function pointer + name, for table-driven runners. */
struct MachineScenario
{
    const char *name;
    void (*run)(topdown::Machine &, std::uint64_t, obs::Tracer *,
                std::uint64_t);
};

/** All five scenarios in their canonical order. */
inline constexpr MachineScenario kMachineScenarios[] = {
    {"alu", scenarioAlu},           {"branchy", scenarioBranchy},
    {"memory", scenarioMemory},     {"streaming", scenarioStreaming},
    {"mixed", scenarioMixed},
};

} // namespace alberta::bench

#endif // ALBERTA_BENCH_MACHINE_SCENARIOS_H
