/**
 * @file
 * Benchmark-similarity study (Section VI related work, Phansalkar et
 * al.): characterize every benchmark, build per-benchmark feature
 * vectors from the top-down summaries, standardize, PCA to two
 * components, and print the similarity map plus nearest neighbours.
 */
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/suite.h"
#include "stats/pca.h"
#include "support/table.h"

int
main()
{
    using namespace alberta;

    std::cout << "Benchmark similarity via PCA over top-down "
                 "behaviour features\n(Eeckhout/Phansalkar-style "
                 "analysis from the paper's Section VI).\n\n";

    std::vector<std::string> names;
    stats::Matrix features;
    for (const auto &name : core::table2Names()) {
        const auto bm = core::makeBenchmark(name);
        core::RunRequest request;
        request.refrateRepetitions = 1;
        const core::Characterization c =
            core::characterize(*bm, request);
        names.push_back(name);
        features.push_back({
            c.topdown.frontend.mean,
            c.topdown.backend.mean,
            c.topdown.badspec.mean,
            c.topdown.retiring.mean,
            std::log(c.topdown.muGV),
            std::log(c.coverage.muGM + 1e-3),
        });
        std::cerr << "  [similarity] " << name << " done\n";
    }

    const stats::Matrix standardized = stats::standardize(features);
    const stats::PcaResult pca =
        stats::principalComponents(standardized, 2);

    support::Table table({"Benchmark", "PC1", "PC2",
                          "nearest neighbour", "distance"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::size_t nearest = i;
        double best = 1e30;
        for (std::size_t j = 0; j < names.size(); ++j) {
            if (j == i)
                continue;
            const double d = stats::pcaDistance(
                pca.projections[i], pca.projections[j]);
            if (d < best) {
                best = d;
                nearest = j;
            }
        }
        table.addRow({names[i],
                      support::formatFixed(pca.projections[i][0], 2),
                      support::formatFixed(pca.projections[i][1], 2),
                      names[nearest],
                      support::formatFixed(best, 2)});
    }
    table.print(std::cout);
    std::cout << "\nvariance explained by 2 components: "
              << support::formatPercent(pca.varianceExplained, 1)
              << "%\n";
    return 0;
}
