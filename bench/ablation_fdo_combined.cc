/**
 * @file
 * Ablation E: combined profiling (Berube & Amaral, cited in Section
 * VI) — merging the profiles of several training workloads before
 * compiling the FDO artifacts. Compares, for several benchmarks:
 *   - single-workload training (the SPEC "train" input), vs
 *   - combined training over three Alberta workloads,
 * both evaluated over all remaining workloads. Expected shape: the
 * combined profile never transfers much worse, and repairs the
 * workload-sensitive cases where single-training misleads.
 */
#include <cmath>
#include <iostream>

#include "core/suite.h"
#include "fdo/fdo.h"
#include "support/table.h"

namespace {

using namespace alberta;

/** Baselines recur between the single and combined evaluations; the
 * cache computes each exactly once. */
runtime::ResultCache baselineCache;

/** Geometric-mean speedup of @p opt over all workloads not in
 * @p excluded. */
double
geomeanSpeedup(const runtime::Benchmark &benchmark,
               const fdo::Optimization &opt,
               const std::vector<std::string> &excluded,
               double *worst)
{
    double logSum = 0.0;
    int count = 0;
    *worst = 1e30;
    for (const auto &w : benchmark.workloads()) {
        bool skip = false;
        for (const auto &name : excluded)
            skip |= w.name == name;
        if (skip)
            continue;
        const auto base =
            fdo::runOptimized(benchmark, w, nullptr, &baselineCache);
        const auto tuned = fdo::runOptimized(benchmark, w, &opt);
        const double speedup = base.cycles / tuned.cycles;
        logSum += std::log(speedup);
        *worst = std::min(*worst, speedup);
        ++count;
    }
    return std::exp(logSum / count);
}

} // namespace

int
main()
{
    std::cout << "Ablation E: single-workload vs combined-profile "
                 "FDO training.\n\n";

    support::Table table({"Benchmark", "single geomean",
                          "single worst", "combined geomean",
                          "combined worst"});

    for (const char *name :
         {"557.xz_r", "523.xalancbmk_r", "505.mcf_r",
          "531.deepsjeng_r"}) {
        const auto bm = core::makeBenchmark(name);
        const auto workloads = bm->workloads();

        // Single training on "train".
        const auto train = runtime::findWorkload(*bm, "train");
        const fdo::Profile single =
            fdo::collectProfile(*bm, train);

        // Combined training: "train" plus the first two Alberta
        // workloads (held out from evaluation as well).
        fdo::Profile combined = single;
        std::vector<std::string> held = {"train"};
        for (const auto &w : workloads) {
            if (held.size() >= 3)
                break;
            if (w.isAlberta()) {
                combined.merge(fdo::collectProfile(*bm, w));
                held.push_back(w.name);
            }
        }

        const fdo::Optimization singleOpt =
            fdo::compileOptimization(single);
        const fdo::Optimization combinedOpt =
            fdo::compileOptimization(combined);

        double singleWorst = 0.0, combinedWorst = 0.0;
        const double singleMean =
            geomeanSpeedup(*bm, singleOpt, held, &singleWorst);
        const double combinedMean =
            geomeanSpeedup(*bm, combinedOpt, held, &combinedWorst);

        table.addRow({name, support::formatFixed(singleMean, 4),
                      support::formatFixed(singleWorst, 4),
                      support::formatFixed(combinedMean, 4),
                      support::formatFixed(combinedWorst, 4)});
        std::cerr << "  [combined] " << name << " done\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: where training workloads "
                 "disagree, combining drops the\ncontested hints and "
                 "lifts worst-case transfer (xalancbmk). Where they "
                 "agree\non hints that unseen content then violates "
                 "(xz's random-content workloads),\ncombining cannot "
                 "help — more diverse training sets are needed, "
                 "which is\nexactly the paper's case for having many "
                 "workloads.\n";
    return 0;
}
