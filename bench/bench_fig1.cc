/**
 * @file
 * Reproduces Figure 1: per-workload Intel top-down stacked fractions
 * for 523.xalancbmk_r (left: visibly workload-sensitive) versus
 * 557.xz_r (right: more stable). Prints the stacked series plus an
 * ASCII bar rendering.
 */
#include <iostream>

#include "core/suite.h"
#include "support/table.h"

namespace {

void
plotBenchmark(const std::string &name,
              alberta::runtime::Engine &engine)
{
    using namespace alberta;
    const auto bm = core::makeBenchmark(name);
    core::RunRequest request;
    request.refrateRepetitions = 1;
    const core::Characterization c =
        core::characterize(*bm, request, &engine);

    std::cout << "\n" << name << " (Figure 1 series)\n";
    support::Table table(
        {"workload", "frontend%", "backend%", "badspec%",
         "retiring%"});
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        const auto &r = c.topdownPerWorkload[i];
        table.addRow({c.workloadNames[i],
                      support::formatPercent(r.frontend, 1),
                      support::formatPercent(r.backend, 1),
                      support::formatPercent(r.badspec, 1),
                      support::formatPercent(r.retiring, 1)});
    }
    table.print(std::cout);

    // ASCII stacked bars: f='F', b='B', s='S', r='R', 50 columns.
    std::cout << "\nstacked bars (50 cols: F=frontend B=backend "
                 "S=badspec R=retiring)\n";
    for (std::size_t i = 0; i < c.workloadNames.size(); ++i) {
        const auto &r = c.topdownPerWorkload[i];
        const int fCols = static_cast<int>(r.frontend * 50 + 0.5);
        const int bCols = static_cast<int>(r.backend * 50 + 0.5);
        const int sCols = static_cast<int>(r.badspec * 50 + 0.5);
        const int rCols =
            std::max(0, 50 - fCols - bCols - sCols);
        std::string bar = std::string(fCols, 'F') +
                          std::string(bCols, 'B') +
                          std::string(sCols, 'S') +
                          std::string(rCols, 'R');
        std::printf("%-26s |%s|\n", c.workloadNames[i].c_str(),
                    bar.c_str());
    }
    std::cout << "mu_g(V) = "
              << support::formatFixed(c.topdown.muGV, 2) << "\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 1: top-down fractions per workload — "
                 "523.xalancbmk_r vs 557.xz_r.\nExpected shape: "
                 "larger cross-workload spread for xalancbmk.\n";
    alberta::runtime::Engine engine;
    plotBenchmark("523.xalancbmk_r", engine);
    plotBenchmark("557.xz_r", engine);
    return 0;
}
