/**
 * @file
 * Microbenchmark for the top-down machine's accounting inner loop: the
 * path every modelled micro-op funnels through. Five deterministic
 * scenarios stress the distinct fast paths that PRs to src/topdown/
 * must keep both fast and bit-identical:
 *
 *   alu        bulk ops() reports, the pure accounting hot path
 *   branchy    patterned conditional branches (gshare + site profile)
 *   memory     scattered loads over an L2-resident working set
 *   streaming  stream() over long contiguous ranges (batched charges)
 *   mixed      interpreter-style dispatch: indirect + load per step
 *
 * Each scenario reports retired micro-ops per second of wall time, and
 * all model outputs (slot totals, cache and predictor counters) are
 * folded into one 64-bit signature. The signature depends only on the
 * model's decisions — never on timing — so scripts/check_build.sh can
 * diff it against the committed BENCH_machine.json to detect any
 * semantic change to the model, however small.
 *
 * The suite runs as three interleaved {null, traced} pass pairs after
 * one warm-up: tracing disabled (the null-sink fast path whose
 * overhead budget is < 2%) alternating with a JSON-lines span trace.
 * All six passes must produce the same signature — tracing can never
 * change model outputs — and the reported throughputs (and the
 * derived overhead) are medians over the three pairs, so a single
 * scheduling hiccup in either mode cannot push the overhead estimate
 * around (or below zero, as a one-shot measurement regularly did).
 *
 *   bench_machine [--json PATH] [--scale N] [--trace FILE]
 */
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "support/rng.h"
#include "topdown/machine.h"

namespace {

using namespace alberta;
using topdown::Machine;
using topdown::OpKind;

/** FNV-1a style fold, matching ExecutionContext::consume's shape. */
struct Signature
{
    std::uint64_t value = 0xcbf29ce484222325ULL;

    void
    fold(std::uint64_t v)
    {
        value = (value ^ v) * 0x100000001b3ULL;
        value ^= value >> 29;
    }

    void fold(double v) { fold(std::bit_cast<std::uint64_t>(v)); }
};

/** Fold every externally observable model output into @p sig. */
void
foldMachine(const Machine &m, Signature &sig)
{
    const auto &t = m.totals();
    sig.fold(t.frontend);
    sig.fold(t.backend);
    sig.fold(t.badspec);
    sig.fold(t.retiring);
    sig.fold(m.retiredOps());
    const auto &h = m.hierarchy();
    for (const topdown::Cache *c :
         {&h.l1d(), &h.l1i(), &h.l2(), &h.l3()}) {
        sig.fold(c->accesses());
        sig.fold(c->misses());
    }
    sig.fold(m.predictor().conditionals());
    sig.fold(m.predictor().mispredicts());
}

struct ScenarioResult
{
    std::string name;
    std::uint64_t uops = 0;
    double seconds = 0.0;

    double
    uopsPerSecond() const
    {
        return seconds > 0.0 ? static_cast<double>(uops) / seconds : 0.0;
    }
};

/** Iterations per child span in the chunked scenarios. */
constexpr std::uint64_t kChunk = 256 * 1024;

/** Pure accounting: bulk ALU reports with periodic method switches. */
void
scenarioAlu(Machine &m, std::uint64_t scale, obs::Tracer *tracer,
            std::uint64_t parent)
{
    for (std::uint64_t rep = 0; rep < 200 * scale; ++rep) {
        obs::Span span(tracer, "alu_rep", "bench", parent);
        m.setMethod(1 + rep % 7, 2048 + 512 * (rep % 3),
                    support::mix64(rep % 7));
        m.ops(OpKind::IntAlu, 40000);
        m.ops(OpKind::IntMul, 8000);
    }
}

/** Patterned conditional branches: loop-like, biased, and noisy. */
void
scenarioBranchy(Machine &m, std::uint64_t scale, obs::Tracer *tracer,
                std::uint64_t parent)
{
    support::Rng rng(0xb7a2c001);
    const std::uint64_t total = 3'000'000 * scale;
    for (std::uint64_t base = 0; base < total; base += kChunk) {
        obs::Span span(tracer, "branchy_chunk", "bench", parent);
        const std::uint64_t end = std::min(total, base + kChunk);
        for (std::uint64_t i = base; i < end; ++i) {
            m.branch(static_cast<std::uint32_t>(i % 13),
                     (i & 7) != 0);                    // loop back-edge
            m.branch(200, rng.chance(0.9));            // biased branch
            m.branch(300 + i % 3, (i >> (i % 5)) & 1); // phase-shifting
        }
        span.note("iters", end - base);
    }
}

/** Scattered loads over ~128 KiB: L1-missing, L2-hitting. */
void
scenarioMemory(Machine &m, std::uint64_t scale, obs::Tracer *tracer,
               std::uint64_t parent)
{
    support::Rng rng(0x3e30a001);
    const std::uint64_t total = 4'000'000 * scale;
    for (std::uint64_t base = 0; base < total; base += kChunk) {
        obs::Span span(tracer, "memory_chunk", "bench", parent);
        const std::uint64_t end = std::min(total, base + kChunk);
        for (std::uint64_t i = base; i < end; ++i) {
            m.load(0x10000000ULL + rng.below(128 * 1024));
            if ((i & 15) == 0)
                m.store(0x20000000ULL + rng.below(64 * 1024));
        }
        span.note("iters", end - base);
    }
}

/** Long contiguous streams: the batched line-accounting path. */
void
scenarioStreaming(Machine &m, std::uint64_t scale, obs::Tracer *tracer,
                  std::uint64_t parent)
{
    for (std::uint64_t rep = 0; rep < 600 * scale; ++rep) {
        obs::Span span(tracer, "stream_rep", "bench", parent);
        const std::uint64_t base = 0x40000000ULL + (rep % 5) * (1 << 22);
        m.stream(OpKind::Load, base, 20000, 8);
        m.stream(OpKind::Store, base + (1 << 21), 10000, 8);
        m.ops(OpKind::FpAdd, 30000);
    }
}

/** Interpreter-style dispatch: indirect branch + load per step. */
void
scenarioMixed(Machine &m, std::uint64_t scale, obs::Tracer *tracer,
              std::uint64_t parent)
{
    support::Rng rng(0x371bed01);
    std::vector<std::uint64_t> program(4096);
    for (auto &op : program)
        op = rng.below(48);
    std::uint64_t pc = 0;
    const std::uint64_t total = 2'000'000 * scale;
    for (std::uint64_t base = 0; base < total; base += kChunk) {
        obs::Span span(tracer, "mixed_chunk", "bench", parent);
        const std::uint64_t end = std::min(total, base + kChunk);
        for (std::uint64_t i = base; i < end; ++i) {
            const std::uint64_t op = program[pc];
            m.load(0x750000000ULL + pc * 16);
            m.indirect(2, op);
            m.ops(OpKind::IntAlu, 2);
            if (m.branch(3, (i & 31) == 0))
                pc = (pc + op) % program.size();
            else
                pc = (pc + 1) % program.size();
        }
        span.note("iters", end - base);
    }
}

template <typename Fn>
ScenarioResult
runScenario(const char *name, Fn &&body, std::uint64_t scale,
            Signature &sig, obs::Tracer *tracer, const char *pass)
{
    Machine m;
    m.setMethod(1, 4096, support::mix64(1));
    const auto start = std::chrono::steady_clock::now();
    {
        obs::Span span(tracer, name, "bench");
        body(m, scale, tracer, span.id());
        span.note("uops", m.retiredOps());
    }
    ScenarioResult r;
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    r.name = name;
    r.uops = m.retiredOps();
    foldMachine(m, sig);
    std::cerr << "  [machine:" << pass << "] " << name << ": " << r.uops
              << " uops in " << r.seconds << " s ("
              << r.uopsPerSecond() / 1e6 << " Muops/s)\n";
    return r;
}

struct PassResult
{
    std::vector<ScenarioResult> results;
    Signature sig;
    std::uint64_t totalUops = 0;
    double totalSeconds = 0.0;

    double
    overall() const
    {
        return totalSeconds > 0.0 ? totalUops / totalSeconds : 0.0;
    }
};

PassResult
runPass(std::uint64_t scale, obs::Tracer *tracer, const char *pass)
{
    PassResult p;
    p.results.push_back(
        runScenario("alu", scenarioAlu, scale, p.sig, tracer, pass));
    p.results.push_back(runScenario("branchy", scenarioBranchy, scale,
                                    p.sig, tracer, pass));
    p.results.push_back(runScenario("memory", scenarioMemory, scale,
                                    p.sig, tracer, pass));
    p.results.push_back(runScenario("streaming", scenarioStreaming,
                                    scale, p.sig, tracer, pass));
    p.results.push_back(runScenario("mixed", scenarioMixed, scale,
                                    p.sig, tracer, pass));
    for (const auto &r : p.results) {
        p.totalUops += r.uops;
        p.totalSeconds += r.seconds;
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_machine.json";
    std::string tracePath;
    std::uint64_t scale = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            scale = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            tracePath = argv[++i];
        else {
            std::cerr << "usage: bench_machine [--json PATH] "
                         "[--scale N] [--trace FILE]\n";
            return 2;
        }
    }
    if (scale == 0)
        scale = 1;

    // Warm-up pass (untimed): faults in code and data so the measured
    // passes below start from the same machine state and their
    // throughputs are comparable.
    (void)runPass(scale, nullptr, "warmup");

    // Three interleaved {null, traced} pairs. Interleaving puts both
    // modes through the same drift (frequency scaling, competing
    // load), and the median over three pairs discards the odd hiccup
    // that used to drive a one-shot overhead estimate negative.
    std::ostringstream discard;
    std::unique_ptr<obs::JsonLinesSink> sink;
    if (tracePath.empty())
        sink = std::make_unique<obs::JsonLinesSink>(discard);
    else
        sink = std::make_unique<obs::JsonLinesSink>(tracePath);
    obs::Tracer tracer(sink.get());

    constexpr int kPairs = 3;
    std::vector<PassResult> plainPasses;
    std::vector<PassResult> tracedPasses;
    for (int pair = 0; pair < kPairs; ++pair) {
        plainPasses.push_back(runPass(scale, nullptr, "null"));
        tracedPasses.push_back(runPass(scale, &tracer, "traced"));
    }
    sink->flush();

    const PassResult &plain = plainPasses.front();
    for (const auto *passes : {&plainPasses, &tracedPasses}) {
        for (const PassResult &p : *passes) {
            if (p.sig.value != plain.sig.value) {
                std::cerr << "bench_machine: FAIL: tracing changed "
                             "model outputs (signature mismatch)\n";
                return 1;
            }
        }
    }

    const auto medianOverall = [](std::vector<PassResult> &passes) {
        std::vector<double> rates;
        rates.reserve(passes.size());
        for (const PassResult &p : passes)
            rates.push_back(p.overall());
        std::sort(rates.begin(), rates.end());
        return rates[rates.size() / 2];
    };
    const double overall = medianOverall(plainPasses);
    const double tracedOverall = medianOverall(tracedPasses);
    const double overheadPercent =
        overall > 0.0 ? (1.0 - tracedOverall / overall) * 100.0 : 0.0;

    char sigHex[19];
    std::snprintf(sigHex, sizeof sigHex, "0x%016llx",
                  static_cast<unsigned long long>(plain.sig.value));

    std::cout << "Machine hot-path throughput: " << overall / 1e6
              << " Muops/s overall, model signature " << sigHex
              << "\n"
              << "Traced: " << tracedOverall / 1e6 << " Muops/s ("
              << sink->spansWritten() << " spans, "
              << overheadPercent << "% overhead)\n";

    // Per-scenario rates are medians over the null passes as well.
    const auto medianScenarioRate = [&](std::size_t scenario) {
        std::vector<double> rates;
        for (const PassResult &p : plainPasses)
            rates.push_back(p.results[scenario].uopsPerSecond());
        std::sort(rates.begin(), rates.end());
        return rates[rates.size() / 2];
    };

    std::ofstream json(jsonPath);
    json << "{\n"
         << "  \"bench\": \"machine\",\n"
         << "  \"scale\": " << scale << ",\n"
         << "  \"pairs\": " << kPairs << ",\n";
    for (std::size_t s = 0; s < plain.results.size(); ++s) {
        json << "  \"" << plain.results[s].name
             << "_uops_per_second\": " << medianScenarioRate(s)
             << ",\n";
    }
    json << "  \"total_uops\": " << plain.totalUops << ",\n"
         << "  \"overall_uops_per_second\": " << overall << ",\n"
         << "  \"traced_overall_uops_per_second\": " << tracedOverall
         << ",\n"
         << "  \"tracing_overhead_percent\": " << overheadPercent
         << ",\n"
         << "  \"trace_spans\": " << sink->spansWritten() << ",\n"
         << "  \"signatures_identical\": true,\n"
         << "  \"model_signature\": \"" << sigHex << "\"\n"
         << "}\n";
    std::cerr << "  [machine] wrote " << jsonPath << "\n";
    return 0;
}
