/**
 * @file
 * Microbenchmark for the top-down machine's accounting inner loop: the
 * path every modelled micro-op funnels through. Five deterministic
 * scenarios stress the distinct fast paths that PRs to src/topdown/
 * must keep both fast and bit-identical:
 *
 *   alu        bulk ops() reports, the pure accounting hot path
 *   branchy    patterned conditional branches (gshare + site profile)
 *   memory     scattered loads over an L2-resident working set
 *   streaming  stream() over long contiguous ranges (batched charges)
 *   mixed      interpreter-style dispatch: indirect + load per step
 *
 * Each scenario reports retired micro-ops per second of wall time, and
 * all model outputs (slot totals, cache and predictor counters) are
 * folded into one 64-bit signature. The signature depends only on the
 * model's decisions — never on timing — so scripts/check_build.sh can
 * diff it against the committed BENCH_machine.json to detect any
 * semantic change to the model, however small.
 *
 * The suite runs as three interleaved {null, traced} pass pairs after
 * one warm-up: tracing disabled (the null-sink fast path whose
 * overhead budget is < 2%) alternating with a JSON-lines span trace.
 * All six passes must produce the same signature — tracing can never
 * change model outputs — and the reported throughputs (and the
 * derived overhead) are medians over the three pairs, so a single
 * scheduling hiccup in either mode cannot push the overhead estimate
 * around (or below zero, as a one-shot measurement regularly did).
 *
 * After the capture/replay probe, a scalar-vs-batched replay pair
 * times `UopTrace::replayAll` against `replayAllBatched` per scenario
 * and reports `<name>_batched_uops_per_second` / `batched_speedup`;
 * the batched outputs must reproduce the direct signature exactly.
 *
 *   bench_machine [--json PATH] [--scale N] [--trace FILE]
 */
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "machine_scenarios.h"
#include "obs/obs.h"
#include "support/rng.h"
#include "topdown/machine.h"
#include "topdown/trace.h"

namespace {

using namespace alberta;
using bench::kMachineScenarios;
using topdown::Machine;
using topdown::OpKind;

/** FNV-1a style fold, matching ExecutionContext::consume's shape. */
struct Signature
{
    std::uint64_t value = 0xcbf29ce484222325ULL;

    void
    fold(std::uint64_t v)
    {
        value = (value ^ v) * 0x100000001b3ULL;
        value ^= value >> 29;
    }

    void fold(double v) { fold(std::bit_cast<std::uint64_t>(v)); }
};

/** Fold every externally observable model output into @p sig. */
void
foldMachine(const Machine &m, Signature &sig)
{
    const auto &t = m.totals();
    sig.fold(t.frontend);
    sig.fold(t.backend);
    sig.fold(t.badspec);
    sig.fold(t.retiring);
    sig.fold(m.retiredOps());
    const auto &h = m.hierarchy();
    for (const topdown::Cache *c :
         {&h.l1d(), &h.l1i(), &h.l2(), &h.l3()}) {
        sig.fold(c->accesses());
        sig.fold(c->misses());
    }
    sig.fold(m.predictor().conditionals());
    sig.fold(m.predictor().mispredicts());
}

struct ScenarioResult
{
    std::string name;
    std::uint64_t uops = 0;
    double seconds = 0.0;

    double
    uopsPerSecond() const
    {
        return seconds > 0.0 ? static_cast<double>(uops) / seconds : 0.0;
    }
};

template <typename Fn>
ScenarioResult
runScenario(const char *name, Fn &&body, std::uint64_t scale,
            Signature &sig, obs::Tracer *tracer, const char *pass)
{
    Machine m;
    m.setMethod(1, 4096, support::mix64(1));
    const auto start = std::chrono::steady_clock::now();
    {
        obs::Span span(tracer, name, "bench");
        body(m, scale, tracer, span.id());
        span.note("uops", m.retiredOps());
    }
    ScenarioResult r;
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    r.name = name;
    r.uops = m.retiredOps();
    foldMachine(m, sig);
    std::cerr << "  [machine:" << pass << "] " << name << ": " << r.uops
              << " uops in " << r.seconds << " s ("
              << r.uopsPerSecond() / 1e6 << " Muops/s)\n";
    return r;
}

struct PassResult
{
    std::vector<ScenarioResult> results;
    Signature sig;
    std::uint64_t totalUops = 0;
    double totalSeconds = 0.0;

    double
    overall() const
    {
        return totalSeconds > 0.0 ? totalUops / totalSeconds : 0.0;
    }
};

PassResult
runPass(std::uint64_t scale, obs::Tracer *tracer, const char *pass)
{
    PassResult p;
    for (const auto &scenario : kMachineScenarios) {
        p.results.push_back(runScenario(scenario.name, scenario.run,
                                        scale, p.sig, tracer, pass));
    }
    for (const auto &r : p.results) {
        p.totalUops += r.uops;
        p.totalSeconds += r.seconds;
    }
    return p;
}

/**
 * Capture/replay throughput probe for the segment runner: record every
 * scenario into a UopTrace with simulation skipped, then replay into a
 * fresh machine, and assert the replayed machine's signature equals the
 * direct pass's. Reports record and replay rates so BENCH_machine.json
 * tracks both sides of the segment pipeline's cost model.
 */
struct CaptureResult
{
    double recordSeconds = 0.0;
    double replaySeconds = 0.0;
    std::uint64_t uops = 0;
    bool identical = false;
};

/**
 * Scalar-vs-batched replay pair: capture each scenario once, then time
 * a scalar `replayAll` against a block-batched `replayAllBatched` on
 * fresh machines (median of three repetitions each, interleaved so
 * both sides see the same drift). The batched machine's outputs are
 * folded and must reproduce the direct pass's signature exactly —
 * the kernel's bit-identity claim, re-proven on every bench run.
 */
struct BatchedScenario
{
    std::string name;
    std::uint64_t uops = 0;
    double scalarSeconds = 0.0;
    double batchedSeconds = 0.0;

    double
    speedup() const
    {
        return batchedSeconds > 0.0 ? scalarSeconds / batchedSeconds
                                    : 0.0;
    }
};

struct BatchedResult
{
    std::vector<BatchedScenario> scenarios;
    double scalarSeconds = 0.0;
    double batchedSeconds = 0.0;
    bool identical = false;

    double
    speedup() const
    {
        return batchedSeconds > 0.0 ? scalarSeconds / batchedSeconds
                                    : 0.0;
    }
};

BatchedResult
runBatchedPass(std::uint64_t scale, const Signature &expected)
{
    constexpr int kReps = 3;
    BatchedResult out;
    Signature batchedSig;
    for (const auto &scenario : kMachineScenarios) {
        topdown::UopTrace trace;
        Machine recorder;
        recorder.captureTo(&trace);
        recorder.setMethod(1, 4096, support::mix64(1));
        scenario.run(recorder, scale, nullptr, 0);

        BatchedScenario r;
        r.name = scenario.name;
        std::vector<double> scalarTimes;
        std::vector<double> batchedTimes;
        for (int rep = 0; rep < kReps; ++rep) {
            Machine scalar;
            auto start = std::chrono::steady_clock::now();
            trace.replayAll(scalar);
            scalarTimes.push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());

            Machine batched;
            start = std::chrono::steady_clock::now();
            trace.replayAllBatched(batched);
            batchedTimes.push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            if (rep == 0) {
                r.uops = batched.retiredOps();
                foldMachine(batched, batchedSig);
            }
        }
        std::sort(scalarTimes.begin(), scalarTimes.end());
        std::sort(batchedTimes.begin(), batchedTimes.end());
        r.scalarSeconds = scalarTimes[kReps / 2];
        r.batchedSeconds = batchedTimes[kReps / 2];
        out.scalarSeconds += r.scalarSeconds;
        out.batchedSeconds += r.batchedSeconds;
        std::cerr << "  [machine:batched] " << r.name << ": "
                  << r.uops << " uops, scalar " << r.scalarSeconds
                  << " s vs batched " << r.batchedSeconds << " s ("
                  << r.speedup() << "x)\n";
        out.scenarios.push_back(std::move(r));
    }
    out.identical = batchedSig.value == expected.value;
    return out;
}

CaptureResult
runCapturePass(std::uint64_t scale, const Signature &expected)
{
    CaptureResult c;
    Signature replayed;
    for (const auto &scenario : kMachineScenarios) {
        topdown::UopTrace trace;
        Machine recorder;
        recorder.captureTo(&trace);
        auto start = std::chrono::steady_clock::now();
        recorder.setMethod(1, 4096, support::mix64(1));
        scenario.run(recorder, scale, nullptr, 0);
        c.recordSeconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        Machine m;
        start = std::chrono::steady_clock::now();
        trace.replayAll(m);
        c.replaySeconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        c.uops += m.retiredOps();
        foldMachine(m, replayed);
        std::cerr << "  [machine:capture] " << scenario.name << ": "
                  << trace.records() << " records, " << m.retiredOps()
                  << " uops\n";
    }
    c.identical = replayed.value == expected.value;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_machine.json";
    std::string tracePath;
    std::uint64_t scale = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            scale = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            tracePath = argv[++i];
        else {
            std::cerr << "usage: bench_machine [--json PATH] "
                         "[--scale N] [--trace FILE]\n";
            return 2;
        }
    }
    if (scale == 0)
        scale = 1;

    // Warm-up pass (untimed): faults in code and data so the measured
    // passes below start from the same machine state and their
    // throughputs are comparable.
    (void)runPass(scale, nullptr, "warmup");

    // Three interleaved {null, traced} pairs. Interleaving puts both
    // modes through the same drift (frequency scaling, competing
    // load), and the median over three pairs discards the odd hiccup
    // that used to drive a one-shot overhead estimate negative.
    std::ostringstream discard;
    std::unique_ptr<obs::JsonLinesSink> sink;
    if (tracePath.empty())
        sink = std::make_unique<obs::JsonLinesSink>(discard);
    else
        sink = std::make_unique<obs::JsonLinesSink>(tracePath);
    obs::Tracer tracer(sink.get());

    constexpr int kPairs = 3;
    std::vector<PassResult> plainPasses;
    std::vector<PassResult> tracedPasses;
    for (int pair = 0; pair < kPairs; ++pair) {
        plainPasses.push_back(runPass(scale, nullptr, "null"));
        tracedPasses.push_back(runPass(scale, &tracer, "traced"));
    }
    sink->flush();

    const PassResult &plain = plainPasses.front();
    for (const auto *passes : {&plainPasses, &tracedPasses}) {
        for (const PassResult &p : *passes) {
            if (p.sig.value != plain.sig.value) {
                std::cerr << "bench_machine: FAIL: tracing changed "
                             "model outputs (signature mismatch)\n";
                return 1;
            }
        }
    }

    // Capture/replay pass: trace-record each scenario, replay into a
    // fresh machine, and require the replayed signature to match.
    const CaptureResult capture = runCapturePass(scale, plain.sig);
    if (!capture.identical) {
        std::cerr << "bench_machine: FAIL: trace replay changed model "
                     "outputs (signature mismatch)\n";
        return 1;
    }

    // Scalar-vs-batched replay pair: the batched kernel must match
    // the direct pass's signature bit-for-bit, else the build fails.
    const BatchedResult batched = runBatchedPass(scale, plain.sig);
    if (!batched.identical) {
        std::cerr << "bench_machine: FAIL: batched replay changed "
                     "model outputs (signature mismatch)\n";
        return 1;
    }

    const auto medianOverall = [](std::vector<PassResult> &passes) {
        std::vector<double> rates;
        rates.reserve(passes.size());
        for (const PassResult &p : passes)
            rates.push_back(p.overall());
        std::sort(rates.begin(), rates.end());
        return rates[rates.size() / 2];
    };
    const double overall = medianOverall(plainPasses);
    const double tracedOverall = medianOverall(tracedPasses);
    const double overheadPercent =
        overall > 0.0 ? (1.0 - tracedOverall / overall) * 100.0 : 0.0;

    char sigHex[19];
    std::snprintf(sigHex, sizeof sigHex, "0x%016llx",
                  static_cast<unsigned long long>(plain.sig.value));

    std::cout << "Machine hot-path throughput: " << overall / 1e6
              << " Muops/s overall, model signature " << sigHex
              << "\n"
              << "Traced: " << tracedOverall / 1e6 << " Muops/s ("
              << sink->spansWritten() << " spans, "
              << overheadPercent << "% overhead)\n"
              << "Batched replay: " << batched.speedup()
              << "x over scalar replay, identical signature\n";

    // Per-scenario rates are medians over the null passes as well.
    const auto medianScenarioRate = [&](std::size_t scenario) {
        std::vector<double> rates;
        for (const PassResult &p : plainPasses)
            rates.push_back(p.results[scenario].uopsPerSecond());
        std::sort(rates.begin(), rates.end());
        return rates[rates.size() / 2];
    };

    std::ofstream json(jsonPath);
    json << "{\n"
         << "  \"bench\": \"machine\",\n"
         << "  \"scale\": " << scale << ",\n"
         << "  \"pairs\": " << kPairs << ",\n";
    for (std::size_t s = 0; s < plain.results.size(); ++s) {
        json << "  \"" << plain.results[s].name
             << "_uops_per_second\": " << medianScenarioRate(s)
             << ",\n";
    }
    for (const BatchedScenario &b : batched.scenarios) {
        json << "  \"" << b.name << "_batched_uops_per_second\": "
             << (b.batchedSeconds > 0.0
                     ? static_cast<double>(b.uops) / b.batchedSeconds
                     : 0.0)
             << ",\n"
             << "  \"" << b.name
             << "_batched_speedup\": " << b.speedup() << ",\n";
    }
    json << "  \"total_uops\": " << plain.totalUops << ",\n"
         << "  \"overall_uops_per_second\": " << overall << ",\n"
         << "  \"traced_overall_uops_per_second\": " << tracedOverall
         << ",\n"
         << "  \"tracing_overhead_percent\": " << overheadPercent
         << ",\n"
         << "  \"trace_spans\": " << sink->spansWritten() << ",\n"
         << "  \"capture_record_uops_per_second\": "
         << (capture.recordSeconds > 0.0
                 ? capture.uops / capture.recordSeconds
                 : 0.0)
         << ",\n"
         << "  \"capture_replay_uops_per_second\": "
         << (capture.replaySeconds > 0.0
                 ? capture.uops / capture.replaySeconds
                 : 0.0)
         << ",\n"
         << "  \"batched_speedup\": " << batched.speedup() << ",\n"
         << "  \"batched_replay_identical\": true,\n"
         << "  \"capture_replay_identical\": true,\n"
         << "  \"signatures_identical\": true,\n"
         << "  \"model_signature\": \"" << sigHex << "\"\n"
         << "}\n";
    std::cerr << "  [machine] wrote " << jsonPath << "\n";
    return 0;
}
