/**
 * @file
 * Ablation A: the paper's 557.xz_r discovery (Section IV-A) — a short
 * file repeated within the dictionary skews execution away from
 * compression toward dictionary lookups, while content larger than
 * the dictionary exercises the compression side. Sweeps the repeat
 * unit against the dictionary size and reports where the work goes.
 */
#include <iostream>

#include "benchmarks/xz/generator.h"
#include "benchmarks/xz/lz77.h"
#include "runtime/context.h"
#include "support/table.h"

int
main()
{
    using namespace alberta;
    using namespace alberta::xz;

    const std::size_t dict = CodecConfig{}.dictionaryBytes;
    std::cout << "Ablation A (557.xz_r): repeat-unit size vs "
                 "dictionary (" << dict << " B).\nExpected shape: "
                 "units inside the dictionary give ~100% matched "
                 "bytes and deep\nchain walks (lookup-dominated); "
                 "units beyond it fall back to literals.\n\n";

    support::Table table({"repeat unit", "unit/dict", "matched%",
                          "chain steps/KB", "find_match%",
                          "emit_literals%", "output/input"});

    for (const std::size_t unit :
         {dict / 32, dict / 8, dict / 2, dict, 2 * dict, 4 * dict}) {
        FileConfig file;
        file.seed = 99;
        file.kind = ContentKind::RepeatedFile;
        file.repeatUnitKind = ContentKind::Random;
        file.repeatUnit = unit;
        file.bytes = 8 * dict;
        const auto raw = generateFile(file);

        runtime::ExecutionContext ctx;
        CompressStats stats;
        const auto packed = compress(raw, {}, ctx, &stats);
        const auto coverage = ctx.coverage();

        const double matched =
            100.0 * stats.matchedBytes /
            (stats.matchedBytes + stats.literals);
        const auto pct = [&](const char *method) {
            const auto it = coverage.find(method);
            return it == coverage.end() ? 0.0 : it->second * 100.0;
        };
        table.addRow(
            {std::to_string(unit),
             support::formatFixed(static_cast<double>(unit) / dict,
                                  3),
             support::formatFixed(matched, 1),
             support::formatFixed(stats.chainSteps * 1024.0 /
                                      raw.size(),
                                  1),
             support::formatFixed(pct("xz::find_match"), 1),
             support::formatFixed(pct("xz::emit_literals"), 1),
             support::formatFixed(
                 static_cast<double>(packed.size()) / raw.size(),
                 3)});
    }
    table.print(std::cout);
    return 0;
}
